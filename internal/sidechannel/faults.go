// Structured channel faults. The i.i.d. bit flips of SetNoise model an
// unreliable read that still *returns*; real DRAM read channels also fail
// in ways the caller can observe and must react to (DeepSteal §V, and the
// budget discussion of "Beyond Slow Signs"):
//
//   - transient errors: a read attempt fails outright, and the cell
//     recovers after a few further attempts (charge pumping, scheduler
//     interference);
//   - stuck-at bits: some cells never flip under hammering, so their bit
//     simply cannot be recovered through this channel;
//   - region outages: a whole row/tensor becomes unreadable for a window
//     of hammering rounds (refresh storms, co-located activity) — or, in
//     the worst case, permanently.
//
// A FaultPlan injects all three deterministically from a seed: every
// decision is a pure hash of (seed, site, attempt) or (seed, region,
// clock epoch), never a shared mutable stream, so campaigns remain
// byte-identical for any worker count and can resume mid-run.
package sidechannel

import (
	"fmt"
	"strconv"
	"strings"

	"decepticon/internal/rng"
)

// FaultKind classifies a channel fault.
type FaultKind int

const (
	// FaultTransient is a failed read attempt that recovers after a few
	// more attempts at the same site. Retryable.
	FaultTransient FaultKind = iota
	// FaultStuck marks a cell that never responds to hammering: the bit
	// is permanently unreadable through this channel. Not retryable.
	FaultStuck
	// FaultOutage is a region-wide failure. Retryable when the outage is
	// a bounded window (waiting it out works), permanent when the region
	// is gone for good.
	FaultOutage
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultStuck:
		return "stuck"
	case FaultOutage:
		return "outage"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ReadFault is the typed error a faulted oracle read returns. Callers
// branch on Retryable: retryable faults are worth backing off and
// retrying, permanent ones are not — the bit (or region) must be
// degraded instead.
type ReadFault struct {
	Param string
	Index int
	Bit   int
	Kind  FaultKind
	// Retryable reports whether retrying the same read can ever succeed.
	Retryable bool
	// Clock is the channel's simulated round counter when the fault
	// fired (diagnostics; outages are windows over this clock).
	Clock int64
}

// Error implements error.
func (f *ReadFault) Error() string {
	mode := "permanent"
	if f.Retryable {
		mode = "retryable"
	}
	return fmt.Sprintf("sidechannel: %s fault (%s) reading %s[%d] bit %d at round %d",
		f.Kind, mode, f.Param, f.Index, f.Bit, f.Clock)
}

// IsRetryable reports whether err is a channel fault worth retrying.
// Non-fault errors (bad address map) are never retryable.
func IsRetryable(err error) bool {
	f, ok := err.(*ReadFault)
	return ok && f.Retryable
}

// StuckRange pins an explicit address range as stuck-at: every read of
// the covered (weight, bit) sites fails permanently. Bit == -1 covers
// all 32 bits; To == 0 extends to the end of the tensor.
type StuckRange struct {
	Param    string
	From, To int // weight index window [From, To); To == 0 means len
	Bit      int // raw bit index, or -1 for every bit
}

// Outage declares an explicit region outage over the channel's simulated
// clock: reads of Param fail during [From, To). To == 0 makes the outage
// permanent — the region is gone and extraction must degrade it.
type Outage struct {
	Param    string
	From, To int64
}

// FaultPlan describes a deterministic fault injection campaign. The zero
// value is a fault-free channel. All stochastic faults derive from Seed
// by pure hashing, so a plan is reproducible and worker-count invariant.
type FaultPlan struct {
	// Seed drives every hashed fault decision.
	Seed uint64

	// TransientRate is the per-attempt probability that a read at a
	// healthy site begins a transient failure run.
	TransientRate float64
	// TransientRecovery is how many consecutive attempts at the site
	// fail before it recovers (default 2).
	TransientRecovery int

	// StuckRate is the per-site probability that a (weight, bit) cell is
	// stuck-at: permanently unreadable. StuckRanges adds explicit ranges
	// on top.
	StuckRate   float64
	StuckRanges []StuckRange

	// OutageRate is the per-epoch probability that a tensor's region is
	// unreadable for one clock epoch of OutagePeriod rounds (default
	// 2048). Outages adds explicit clock windows on top.
	OutageRate   float64
	OutagePeriod int64
	Outages      []Outage
}

// ForVictim derives a victim-specific plan: same fault profile, but the
// hashed decisions are re-seeded from the victim's name. Campaigns that
// attack many victims in parallel use this so each victim's faults are a
// function of its identity, not of scheduling order.
func (p *FaultPlan) ForVictim(name string) *FaultPlan {
	if p == nil {
		return nil
	}
	d := *p
	d.Seed ^= rng.Seed("faultplan", name)
	return &d
}

// ParseFaultPlan builds a plan from a CLI spec: comma-separated
// key=value pairs, e.g.
//
//	transient=0.05,recovery=3,stuck=0.001,outage=0.02,period=1024,seed=7
//
// Unknown keys are an error; an empty spec returns nil (no faults).
// Explicit StuckRanges/Outages are API-only.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("sidechannel: fault spec %q: want key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "transient":
			p.TransientRate, err = strconv.ParseFloat(val, 64)
		case "recovery":
			p.TransientRecovery, err = strconv.Atoi(val)
		case "stuck":
			p.StuckRate, err = strconv.ParseFloat(val, 64)
		case "outage":
			p.OutageRate, err = strconv.ParseFloat(val, 64)
		case "period":
			p.OutagePeriod, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("sidechannel: fault spec: unknown key %q (seed, transient, recovery, stuck, outage, period)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("sidechannel: fault spec %q: %v", kv, err)
		}
	}
	return p, nil
}

// transientRecovery returns the configured recovery length with its
// default applied.
func (p *FaultPlan) transientRecovery() int {
	if p.TransientRecovery <= 0 {
		return 2
	}
	return p.TransientRecovery
}

// outagePeriod returns the configured epoch length with its default.
func (p *FaultPlan) outagePeriod() int64 {
	if p.OutagePeriod <= 0 {
		return HammerRoundsPerBit
	}
	return p.OutagePeriod
}

// site identifies one (tensor, weight, bit) cell.
type site struct {
	param string
	idx   int
	bit   int
}

// faultState is the oracle-side fault machinery: the immutable plan plus
// the per-site transient bookkeeping. The clock advances by one per read
// attempt (faulted or not) and by explicit backoff; it lives on the
// Oracle so ChannelState can checkpoint it.
//
// The transient maps are intentionally NOT checkpointed: extraction
// interrupts only at tensor boundaries, and a site is never read again
// once its tensor completes, so in-flight recovery runs cannot span a
// checkpoint.
type faultState struct {
	plan      FaultPlan
	attempts  map[site]int // attempts made at the site so far
	recoverAt map[site]int // attempt number at which a transient run ends
}

func newFaultState(p FaultPlan) *faultState {
	return &faultState{
		plan:      p,
		attempts:  make(map[site]int),
		recoverAt: make(map[site]int),
	}
}

// hashU64 mixes words into a decision hash (splitmix64 finalizer per
// word; stable across platforms).
func hashU64(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		h ^= w
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// hashFloat maps a decision hash to [0, 1).
func hashFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// fault decision domains, kept distinct so the same site never shares a
// hash across fault classes.
const (
	domTransient = 0x7472616e7369656e // "transien"
	domStuck     = 0x737475636b       // "stuck"
	domOutage    = 0x6f7574616765     // "outage"
)

// check decides whether this read attempt faults, advancing the per-site
// attempt counter. clock is the attempt's round number (already
// advanced by the caller). Returns nil on a clean read.
func (s *faultState) check(param string, idx, bit int, clock int64) *ReadFault {
	p := &s.plan
	fault := func(kind FaultKind, retryable bool) *ReadFault {
		return &ReadFault{Param: param, Index: idx, Bit: bit, Kind: kind, Retryable: retryable, Clock: clock}
	}
	pseed := hashU64(p.Seed, uint64(len(param)))
	for i := 0; i < len(param); i++ {
		pseed = hashU64(pseed, uint64(param[i]))
	}

	// Stuck-at cells: permanent, highest precedence — no amount of
	// waiting changes them.
	for _, r := range p.StuckRanges {
		if r.Param != param || idx < r.From || (r.To > 0 && idx >= r.To) {
			continue
		}
		if r.Bit == -1 || r.Bit == bit {
			return fault(FaultStuck, false)
		}
	}
	if p.StuckRate > 0 && hashFloat(hashU64(pseed, domStuck, uint64(idx), uint64(bit))) < p.StuckRate {
		return fault(FaultStuck, false)
	}

	// Region outages: explicit windows first (To == 0 → permanent),
	// then hashed per-epoch outages (always bounded, hence retryable).
	for _, o := range p.Outages {
		if o.Param != param || clock < o.From || (o.To > 0 && clock >= o.To) {
			continue
		}
		return fault(FaultOutage, o.To > 0)
	}
	if p.OutageRate > 0 {
		epoch := clock / p.outagePeriod()
		if hashFloat(hashU64(pseed, domOutage, uint64(epoch))) < p.OutageRate {
			return fault(FaultOutage, true)
		}
	}

	// Transient failure runs: a hashed per-attempt trigger starts a run
	// of transientRecovery consecutive failures at the site.
	if p.TransientRate > 0 {
		k := site{param, idx, bit}
		a := s.attempts[k]
		s.attempts[k] = a + 1
		if a < s.recoverAt[k] {
			return fault(FaultTransient, true)
		}
		if hashFloat(hashU64(pseed, domTransient, uint64(idx), uint64(bit), uint64(a))) < p.TransientRate {
			s.recoverAt[k] = a + p.transientRecovery()
			return fault(FaultTransient, true)
		}
	}
	return nil
}

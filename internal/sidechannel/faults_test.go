package sidechannel

import (
	"errors"
	"testing"
)

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=7,transient=0.05,recovery=3,stuck=0.001,outage=0.02,period=1024")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.TransientRate != 0.05 || p.TransientRecovery != 3 ||
		p.StuckRate != 0.001 || p.OutageRate != 0.02 || p.OutagePeriod != 1024 {
		t.Fatalf("parsed plan %+v", p)
	}
	if p, err := ParseFaultPlan("  "); err != nil || p != nil {
		t.Fatalf("empty spec must be (nil, nil), got (%v, %v)", p, err)
	}
	if _, err := ParseFaultPlan("bogus=1"); err == nil {
		t.Fatal("unknown key must be rejected")
	}
	if _, err := ParseFaultPlan("transient=lots"); err == nil {
		t.Fatal("bad value must be rejected")
	}
	if _, err := ParseFaultPlan("transient"); err == nil {
		t.Fatal("missing '=' must be rejected")
	}
}

func TestForVictimDerivesDistinctSeeds(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.ForVictim("x") != nil {
		t.Fatal("nil plan must stay nil")
	}
	p := &FaultPlan{Seed: 3, TransientRate: 0.1}
	a, b := p.ForVictim("alpha"), p.ForVictim("beta")
	if a.Seed == b.Seed {
		t.Fatal("distinct victims must get distinct fault seeds")
	}
	if a.TransientRate != p.TransientRate {
		t.Fatal("derived plan must keep the fault profile")
	}
	if p.Seed != 3 {
		t.Fatal("ForVictim must not mutate the original plan")
	}
}

// TestStuckRangeFaultsPermanently: reads inside an explicit stuck range
// fail with a permanent fault, are metered as faulted attempts (never as
// bit reads), and sites outside the range are untouched.
func TestStuckRangeFaultsPermanently(t *testing.T) {
	m := model()
	o := NewOracle(m)
	o.SetFaultPlan(&FaultPlan{StuckRanges: []StuckRange{
		{Param: "head_w", From: 2, To: 4, Bit: -1},
	}})
	_, err := o.ReadBit("head_w", 2, 5)
	var f *ReadFault
	if !errors.As(err, &f) {
		t.Fatalf("want *ReadFault, got %v", err)
	}
	if f.Kind != FaultStuck || f.Retryable || IsRetryable(err) {
		t.Fatalf("stuck fault must be permanent, got %+v", f)
	}
	// Retrying never helps.
	if _, err := o.ReadBit("head_w", 2, 5); err == nil {
		t.Fatal("stuck cell must fault on every attempt")
	}
	if o.FaultedReads != 2 || o.BitReads != 0 {
		t.Fatalf("meters: faulted %d (want 2), bit reads %d (want 0)", o.FaultedReads, o.BitReads)
	}
	// Outside the range the channel is healthy.
	if _, err := o.ReadBit("head_w", 4, 5); err != nil {
		t.Fatalf("site outside the range faulted: %v", err)
	}
	if o.BitReads != 1 {
		t.Fatalf("healthy read not metered: %d", o.BitReads)
	}
}

// TestOutageWindowEndsWithClock: an explicit bounded outage is retryable
// and ends once the channel clock leaves the window; a permanent outage
// (To == 0) never ends.
func TestOutageWindowEndsWithClock(t *testing.T) {
	m := model()
	o := NewOracle(m)
	o.SetFaultPlan(&FaultPlan{Outages: []Outage{
		{Param: "head_w", From: 0, To: 100},
		{Param: "head_b", From: 0, To: 0},
	}})
	_, err := o.ReadBit("head_w", 0, 0)
	var f *ReadFault
	if !errors.As(err, &f) || f.Kind != FaultOutage || !f.Retryable {
		t.Fatalf("want retryable outage fault, got %v", err)
	}
	// Waiting out the window ends the outage.
	o.AdvanceClock(200)
	if _, err := o.ReadBit("head_w", 0, 0); err != nil {
		t.Fatalf("outage must end after its window: %v", err)
	}
	// The permanent outage does not care about the clock.
	_, err = o.ReadBit("head_b", 0, 0)
	if !errors.As(err, &f) || f.Kind != FaultOutage || f.Retryable {
		t.Fatalf("want permanent outage fault, got %v", err)
	}
}

// TestTransientRunRecovers: a transient fault run lasts exactly
// TransientRecovery consecutive attempts at the site, then the cell
// recovers (hashed triggers permitting).
func TestTransientRunRecovers(t *testing.T) {
	m := model()
	o := NewOracle(m)
	// Find a seed whose very first attempt at the probe site triggers a
	// transient, so the run length is observable deterministically.
	var seed uint64
	found := false
	for s := uint64(1); s < 5000 && !found; s++ {
		fs := newFaultState(FaultPlan{Seed: s, TransientRate: 0.05, TransientRecovery: 3})
		if f := fs.check("head_w", 0, 0, 1); f != nil {
			seed, found = s, true
		}
	}
	if !found {
		t.Fatal("no seed triggers a transient at the probe site (hash broken?)")
	}
	o.SetFaultPlan(&FaultPlan{Seed: seed, TransientRate: 0.05, TransientRecovery: 3})
	failures := 0
	for attempt := 0; attempt < 10; attempt++ {
		_, err := o.ReadBit("head_w", 0, 0)
		if err == nil {
			break
		}
		if !IsRetryable(err) {
			t.Fatalf("transient fault must be retryable: %v", err)
		}
		failures++
	}
	if failures != 3 {
		t.Fatalf("transient run lasted %d attempts, want TransientRecovery=3", failures)
	}
}

// TestFaultPlanDeterministic: the same plan over the same read sequence
// produces the identical fault pattern — the property campaign worker
// invariance and checkpoint resume both rest on.
func TestFaultPlanDeterministic(t *testing.T) {
	pattern := func() []bool {
		o := NewOracle(model())
		o.SetFaultPlan(&FaultPlan{Seed: 42, TransientRate: 0.2, StuckRate: 0.02, OutageRate: 0.1, OutagePeriod: 16})
		var out []bool
		for idx := 0; idx < 8; idx++ {
			for bit := 0; bit < 32; bit++ {
				_, err := o.ReadBit("block0.wq", idx, bit)
				out = append(out, err != nil)
			}
		}
		return out
	}
	a, b := pattern(), pattern()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverges at read %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with these rates must fault at least once in 256 reads")
	}
}

// TestChannelStateRoundTrip: State/RestoreState must put a second oracle
// at exactly the channel position of the first — same meters, same future
// noise stream — so a resumed extraction observes the same channel an
// uninterrupted one would.
func TestChannelStateRoundTrip(t *testing.T) {
	m := model()
	run := func(split bool) ([]int, ChannelState) {
		o := NewOracle(m)
		o.SetNoise(0.2, 0xabc)
		var bits []int
		for i := 0; i < 50; i++ {
			b, err := o.ReadBit("head_w", i%8, i%32)
			if err != nil {
				t.Fatal(err)
			}
			bits = append(bits, b)
		}
		if split {
			// Hand the channel position to a fresh oracle mid-stream.
			s := o.State()
			o2 := NewOracle(m)
			o2.SetNoise(0.2, 0xabc)
			o2.RestoreState(s)
			o = o2
		}
		for i := 50; i < 100; i++ {
			b, err := o.ReadBit("head_w", i%8, i%32)
			if err != nil {
				t.Fatal(err)
			}
			bits = append(bits, b)
		}
		return bits, o.State()
	}
	straight, sA := run(false)
	handed, sB := run(true)
	for i := range straight {
		if straight[i] != handed[i] {
			t.Fatalf("noise stream diverges at read %d after a state hand-off", i)
		}
	}
	if sA != sB {
		t.Fatalf("final channel state diverges: %+v vs %+v", sA, sB)
	}
	if sA.BitReads != 100 {
		t.Fatalf("restored meters lost reads: %d", sA.BitReads)
	}
}

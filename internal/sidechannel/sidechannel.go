// Package sidechannel simulates the physical leakage channels Decepticon
// composes (paper §3, §6.1):
//
//   - a bus-probe address map: PCIe/memory-bus snooping reveals where each
//     weight tensor lives in device memory, so the attacker can address
//     individual weights;
//   - a rowhammer bit-read oracle in the style of DeepSteal [40]: reading
//     one DRAM-resident bit costs thousands of hammering rounds, which is
//     precisely why the paper's selective extraction — checking only the
//     few bits fine-tuning can have changed — is the difference between an
//     impractical and a practical attack on large models.
//
// The oracle returns ground-truth victim bits (the simulation is exact)
// while metering the cost the attacker would pay.
package sidechannel

import (
	"context"
	"fmt"
	"sort"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/rng"
	"decepticon/internal/transformer"
)

// HammerRoundsPerBit is the simulated cost of one bit read. DeepSteal
// reports needing thousands of rowhammer rounds to recover part of a
// weight; 2048 rounds per recovered bit is the cost model used for every
// efficiency number in EXPERIMENTS.md.
const HammerRoundsPerBit = 2048

// Region is one weight tensor's placement in victim device memory.
type Region struct {
	Param string // tensor name (transformer.NamedParam.Name)
	Layer int
	Base  uintptr // simulated device address
	Count int     // number of float32 weights
}

// AddressMap is what bus probing gives the attacker: tensor placements in
// device memory, in allocation order.
type AddressMap struct {
	Regions []Region
}

// MapModel lays the victim's tensors out contiguously (16-byte aligned),
// as a framework allocator would, and returns the observed address map.
func MapModel(m *transformer.Model) *AddressMap {
	const base = uintptr(0x7f0000000000)
	addr := base
	am := &AddressMap{}
	for _, p := range m.Params() {
		n := len(p.Value.Data)
		am.Regions = append(am.Regions, Region{
			Param: p.Name, Layer: p.Layer, Base: addr, Count: n,
		})
		addr += uintptr(n*4+15) &^ 15
	}
	return am
}

// RegionOf returns the region holding a parameter.
func (am *AddressMap) RegionOf(param string) (Region, bool) {
	for _, r := range am.Regions {
		if r.Param == param {
			return r, true
		}
	}
	return Region{}, false
}

// Locate resolves a device address to (param, weight index).
func (am *AddressMap) Locate(addr uintptr) (string, int, bool) {
	i := sort.Search(len(am.Regions), func(i int) bool {
		return am.Regions[i].Base > addr
	})
	if i == 0 {
		return "", 0, false
	}
	r := am.Regions[i-1]
	off := int(addr-r.Base) / 4
	if off >= r.Count {
		return "", 0, false
	}
	return r.Param, off, true
}

// Oracle is the rowhammer bit-read channel over one victim model.
type Oracle struct {
	weights map[string][]float32
	// BitReads is the number of physical bit reads performed so far —
	// every oracle access counts, including majority-vote repeats, which
	// is what distinguishes it from the extraction's logical counters.
	// int64: at 2048 hammer rounds per bit, a realistic model size with
	// ReadRepeats overflows 32-bit int arithmetic.
	BitReads int64
	// BitErrorRate, when positive, makes each read return a flipped bit
	// with this probability — rowhammer reads are not perfectly reliable,
	// and a robust extraction must tolerate occasional wrong bits.
	BitErrorRate float64
	// FaultedReads counts read attempts that failed with a ReadFault.
	// Faulted attempts are metered separately: they advance the channel
	// clock but never BitReads — the attacker pays the attempt, not a
	// recovered bit.
	FaultedReads int64
	// FlipsInjected counts noisy reads that returned a wrong bit (the
	// field mirror of the sidechannel.bit_flips_injected counter, needed
	// to restore the counter across a checkpoint).
	FlipsInjected int64

	noise  *rng.RNG
	faults *faultState
	clock  int64 // simulated rounds: one per read attempt, plus backoff
	ctx    context.Context

	// Pre-resolved obs handles (nil-safe no-ops until SetObs): ReadBit is
	// the hottest metered path in the repo, so the name→counter lookup
	// happens once, not per read.
	cBitReads *obs.Counter
	cHammer   *obs.Counter
	cFlips    *obs.Counter
	cFaults   *obs.Counter
	flight    *obs.FlightRecorder
}

// NewOracle wraps a victim model. The oracle holds references to the
// victim's live weights; the attacker never sees them except one metered
// bit at a time.
func NewOracle(victim *transformer.Model) *Oracle {
	o := &Oracle{weights: make(map[string][]float32), noise: rng.New(0x5eed)}
	for _, p := range victim.Params() {
		o.weights[p.Name] = p.Value.Data
	}
	return o
}

// SetNoise configures an unreliable channel: reads flip with probability
// rate, deterministically per seed.
func (o *Oracle) SetNoise(rate float64, seed uint64) {
	o.BitErrorRate = rate
	o.noise = rng.New(seed)
}

// SetFaultPlan arms a structured-fault campaign (see FaultPlan). A nil
// plan restores the fault-free channel. Arming a plan also starts the
// channel's simulated clock, which outages are windows over.
func (o *Oracle) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		o.faults = nil
		return
	}
	o.faults = newFaultState(*p)
}

// SetObs mirrors the oracle's meters into a registry:
//
//	sidechannel.bit_reads_physical  every metered bit read (incl. repeats)
//	sidechannel.hammer_rounds       bit reads × HammerRoundsPerBit
//	sidechannel.bit_flips_injected  noisy reads that returned a wrong bit
//	sidechannel.read_faults         attempts that failed with a ReadFault
//
// A nil registry detaches the oracle again. Counter handles are resolved
// here once so per-read cost stays a couple of atomic adds. When the
// registry carries a flight recorder, every channel fault is also noted
// there — the black-box record of what the channel did right before an
// extraction died.
func (o *Oracle) SetObs(r *obs.Registry) {
	o.cBitReads = r.Counter("sidechannel.bit_reads_physical")
	o.cHammer = r.Counter("sidechannel.hammer_rounds")
	o.cFlips = r.Counter("sidechannel.bit_flips_injected")
	o.cFaults = r.Counter("sidechannel.read_faults")
	o.flight = r.Flight()
}

// Bind attaches a context to the channel: once ctx is cancelled (or its
// deadline passes), every subsequent ReadBit fails with the context's
// error *before* any meter is charged or the clock advanced — an aborted
// read costs nothing, so the channel position stays exactly where the
// last completed read left it and a checkpointed extraction resumes
// byte-identically. A nil ctx unbinds.
func (o *Oracle) Bind(ctx context.Context) { o.ctx = ctx }

// AdvanceClock moves the channel's simulated clock forward n rounds
// without reading — how a caller spends backoff time waiting out an
// outage or a transient run. A no-op on a fault-free channel (the clock
// only gates fault windows).
func (o *Oracle) AdvanceClock(n int64) {
	if n > 0 {
		o.clock += n
	}
}

// Clock returns the channel's simulated round counter.
func (o *Oracle) Clock() int64 { return o.clock }

// ChannelState is the serializable position of the channel: the meters,
// the clock, and the noise stream. Together with a FaultPlan (which is
// pure configuration) it lets a checkpointed extraction resume with the
// channel exactly where it stopped — same future noise, same future
// fault windows, reconciling meters.
type ChannelState struct {
	BitReads      int64
	FaultedReads  int64
	FlipsInjected int64
	Clock         int64
	NoiseState    uint64
}

// State snapshots the channel position for a checkpoint.
func (o *Oracle) State() ChannelState {
	return ChannelState{
		BitReads:      o.BitReads,
		FaultedReads:  o.FaultedReads,
		FlipsInjected: o.FlipsInjected,
		Clock:         o.clock,
		NoiseState:    o.noise.State(),
	}
}

// RestoreState rewinds the channel to a checkpointed position. The
// already-paid meters are re-applied to the attached obs counters (call
// SetObs first), so a resumed run's registry reconciles byte-for-byte
// with an uninterrupted one. The caller must re-arm the same FaultPlan
// and noise seed it used originally; only their *position* is restored
// here.
func (o *Oracle) RestoreState(s ChannelState) {
	o.BitReads = s.BitReads
	o.FaultedReads = s.FaultedReads
	o.FlipsInjected = s.FlipsInjected
	o.clock = s.Clock
	o.noise = rng.FromState(s.NoiseState)
	o.cBitReads.Add(s.BitReads)
	o.cHammer.Add(s.BitReads * HammerRoundsPerBit)
	o.cFlips.Add(s.FlipsInjected)
	o.cFaults.Add(s.FaultedReads)
}

// trueBit returns the ground-truth bit without cost or noise. It backs
// both the metered reads and the simulation-side metrics. An unknown
// tensor or out-of-range index is attacker-facing input (a corrupt or
// adversarial address map), so it surfaces as an error, not a panic.
func (o *Oracle) trueBit(param string, idx, bit int) (int, error) {
	w, ok := o.weights[param]
	if !ok {
		return 0, fmt.Errorf("sidechannel: unknown tensor %q", param)
	}
	if idx < 0 || idx >= len(w) {
		return 0, fmt.Errorf("sidechannel: weight index %d out of range for %q (size %d)", idx, param, len(w))
	}
	return ieee754.Bit(w[idx], bit), nil
}

// ReadBit reads raw bit `bit` (0 = LSB, 31 = sign) of weight idx in the
// named tensor, incrementing the cost meter. With a configured
// BitErrorRate the result is occasionally wrong. Under a FaultPlan the
// attempt may fail with a *ReadFault — metered as a faulted attempt, not
// a bit read — whose Retryable field tells the caller whether backing
// off and retrying can succeed. A read through a bad address map returns
// an error without charging any meter.
func (o *Oracle) ReadBit(param string, idx, bit int) (int, error) {
	b, err := o.trueBit(param, idx, bit)
	if err != nil {
		return 0, err
	}
	// A bound, dead context aborts before the clock or any meter moves:
	// the attempt never happened as far as the channel is concerned.
	if o.ctx != nil {
		if cerr := o.ctx.Err(); cerr != nil {
			return 0, cerr
		}
	}
	// Every attempt advances the simulated clock, fault plan or not —
	// the clock is what bit-read latency histograms are measured against,
	// so it must tick on clean channels too. (Fault windows see the same
	// increment-then-check order as before.)
	o.clock++
	if o.faults != nil {
		if f := o.faults.check(param, idx, bit, o.clock); f != nil {
			o.FaultedReads++
			o.cFaults.Inc()
			o.flight.Note("fault", f.Kind.String(), map[string]string{
				"param": param,
				"index": fmt.Sprint(idx),
				"bit":   fmt.Sprint(bit),
				"clock": fmt.Sprint(o.clock),
				"retry": fmt.Sprint(f.Retryable),
			})
			return 0, f
		}
	}
	o.BitReads++
	o.cBitReads.Inc()
	o.cHammer.Add(HammerRoundsPerBit)
	if o.BitErrorRate > 0 && o.noise.Float64() < o.BitErrorRate {
		b ^= 1
		o.FlipsInjected++
		o.cFlips.Inc()
	}
	return b, nil
}

// PeekWord returns a weight's exact value without cost or noise. It is
// simulation-side ground truth for metrics — never part of the attacker's
// channel.
func (o *Oracle) PeekWord(param string, idx int) (float32, error) {
	var out float32
	for bit := 0; bit < 32; bit++ {
		b, err := o.trueBit(param, idx, bit)
		if err != nil {
			return 0, err
		}
		out = ieee754.SetBit(out, bit, b)
	}
	return out, nil
}

// ReadWord reads all 32 bits of one weight (the last-layer full
// extraction), costing 32 bit reads.
func (o *Oracle) ReadWord(param string, idx int) (float32, error) {
	var out float32
	for bit := 0; bit < 32; bit++ {
		b, err := o.ReadBit(param, idx, bit)
		if err != nil {
			return 0, err
		}
		out = ieee754.SetBit(out, bit, b)
	}
	return out, nil
}

// HammerRounds returns the total simulated rowhammer rounds spent.
// int64: realistic models with ReadRepeats push this past 2^31.
func (o *Oracle) HammerRounds() int64 { return o.BitReads * HammerRoundsPerBit }

// Attempts returns every metered oracle access so far — successful bit
// reads plus faulted attempts. This is the quantity read budgets bound
// and the denominator fault-rate estimators divide by.
func (o *Oracle) Attempts() int64 { return o.BitReads + o.FaultedReads }

// TensorSize returns the weight count of a tensor (0 if unknown).
func (o *Oracle) TensorSize(param string) int { return len(o.weights[param]) }

package sidechannel

import (
	"testing"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/transformer"
)

func model() *transformer.Model {
	cfg := transformer.Config{
		Name: "victim", Layers: 2, Hidden: 8, Heads: 2, FFN: 16,
		Vocab: 12, MaxSeq: 6, Labels: 3,
	}
	return transformer.New(cfg, 42)
}

func TestAddressMapLayout(t *testing.T) {
	m := model()
	am := MapModel(m)
	if len(am.Regions) != len(m.Params()) {
		t.Fatalf("regions %d, params %d", len(am.Regions), len(m.Params()))
	}
	// Regions are ordered, non-overlapping, aligned.
	for i := 1; i < len(am.Regions); i++ {
		prev, cur := am.Regions[i-1], am.Regions[i]
		if cur.Base < prev.Base+uintptr(prev.Count*4) {
			t.Fatalf("regions overlap: %v then %v", prev, cur)
		}
		if cur.Base%16 != 0 {
			t.Fatalf("region %q unaligned", cur.Param)
		}
	}
}

func TestRegionOfAndLocate(t *testing.T) {
	m := model()
	am := MapModel(m)
	r, ok := am.RegionOf("block1.wq")
	if !ok {
		t.Fatal("block1.wq not mapped")
	}
	// Address of weight 5 resolves back.
	param, idx, ok := am.Locate(r.Base + 5*4)
	if !ok || param != "block1.wq" || idx != 5 {
		t.Fatalf("Locate = %q %d %v", param, idx, ok)
	}
	if _, _, ok := am.Locate(0x10); ok {
		t.Fatal("bogus address must not resolve")
	}
	if _, ok := am.RegionOf("nope"); ok {
		t.Fatal("unknown tensor must not resolve")
	}
}

func TestReadBitMatchesVictim(t *testing.T) {
	m := model()
	o := NewOracle(m)
	w := m.Blocks[0].Wq.V.Data[3]
	for bit := 0; bit < 32; bit++ {
		got, err := o.ReadBit("block0.wq", 3, bit)
		if err != nil {
			t.Fatal(err)
		}
		if got != ieee754.Bit(w, bit) {
			t.Fatalf("bit %d mismatch", bit)
		}
	}
	if o.BitReads != 32 {
		t.Fatalf("bit reads = %d, want 32", o.BitReads)
	}
	if o.HammerRounds() != 32*HammerRoundsPerBit {
		t.Fatalf("hammer rounds = %d", o.HammerRounds())
	}
}

func TestReadWordRoundTrip(t *testing.T) {
	m := model()
	o := NewOracle(m)
	want := m.HeadW.V.Data[7]
	got, err := o.ReadWord("head_w", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ReadWord = %v, want %v", got, want)
	}
	if o.BitReads != 32 {
		t.Fatalf("ReadWord must cost 32 bit reads, got %d", o.BitReads)
	}
}

func TestOracleSeesLiveWeights(t *testing.T) {
	// The oracle reads the victim's *current* memory: changing the victim
	// changes what the channel observes.
	m := model()
	o := NewOracle(m)
	m.HeadW.V.Data[0] = 1.5
	if got, err := o.ReadWord("head_w", 0); err != nil || got != 1.5 {
		t.Fatalf("oracle read %v (err %v) after in-place update", got, err)
	}
}

func TestOracleBadAddressReturnsError(t *testing.T) {
	// Malformed address maps are attacker-facing input: reads through them
	// must fail gracefully — an error, no cost charged, no panic.
	m := model()
	o := NewOracle(m)
	cases := map[string]func() error{
		"read unknown tensor": func() error { _, err := o.ReadBit("nope", 0, 0); return err },
		"read bad index":      func() error { _, err := o.ReadBit("head_w", 1<<20, 0); return err },
		"read negative index": func() error { _, err := o.ReadBit("head_w", -1, 0); return err },
		"word unknown tensor": func() error { _, err := o.ReadWord("nope", 0); return err },
		"peek bad index":      func() error { _, err := o.PeekWord("head_w", 1<<20); return err },
	}
	for name, fn := range cases {
		if err := fn(); err == nil {
			t.Fatalf("%s must return an error", name)
		}
	}
	if o.BitReads != 0 {
		t.Fatalf("failed reads must not charge the meter, got %d", o.BitReads)
	}
}

func TestOracleMirrorsIntoObs(t *testing.T) {
	m := model()
	o := NewOracle(m)
	r := obs.New()
	o.SetObs(r)
	if _, err := o.ReadWord("head_w", 0); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if s.Counters["sidechannel.bit_reads_physical"] != 32 {
		t.Fatalf("obs bit reads = %d, want 32", s.Counters["sidechannel.bit_reads_physical"])
	}
	if s.Counters["sidechannel.hammer_rounds"] != o.HammerRounds() {
		t.Fatalf("obs hammer rounds %d != oracle meter %d",
			s.Counters["sidechannel.hammer_rounds"], o.HammerRounds())
	}
}

func TestTensorSize(t *testing.T) {
	m := model()
	o := NewOracle(m)
	if got := o.TensorSize("head_w"); got != 8*3 {
		t.Fatalf("TensorSize(head_w) = %d", got)
	}
	if o.TensorSize("nope") != 0 {
		t.Fatal("unknown tensor size must be 0")
	}
}

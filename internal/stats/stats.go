// Package stats provides the statistical primitives used across the
// Decepticon reproduction: summary statistics, histograms, correlation,
// sequence edit distance (for the DeepSniffer LER metric), and
// classification metrics (accuracy, F1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FractionWithin returns the fraction of xs whose absolute value is at
// most bound. It is the paper's "X% of weights within ±bound" metric.
func FractionWithin(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if math.Abs(x) <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ and returns 0 when either side has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram is a fixed-width binning of samples over [Min, Max]. Samples
// outside the range are clamped into the boundary bins so the total count
// always equals the number of observations.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram returns a histogram with bins equal-width bins over
// [min, max]. It panics on a degenerate range or non-positive bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.Total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Levenshtein returns the edit distance between two sequences of labels.
// It is the core of the DeepSniffer LER metric (Table 2).
func Levenshtein(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LER returns the layer (label) error rate: edit distance between the
// predicted and true sequences, normalized by the true sequence length.
// Values over 1 mean the prediction is useless, as in the paper.
func LER(pred, truth []string) float64 {
	if len(truth) == 0 {
		return 0
	}
	return float64(Levenshtein(pred, truth)) / float64(len(truth))
}

// Accuracy returns the fraction of positions where pred equals truth. It
// panics on length mismatch.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("stats: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	n := 0
	for i := range pred {
		if pred[i] == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(pred))
}

// MatchRate returns the fraction of positions where two prediction vectors
// agree — the paper's "fraction of matched predictions" (Fig 15 right).
func MatchRate(a, b []int) float64 {
	return Accuracy(a, b)
}

// MacroF1 returns the macro-averaged F1 score over classes 0..numClasses-1.
func MacroF1(pred, truth []int, numClasses int) float64 {
	if len(pred) != len(truth) {
		panic("stats: MacroF1 length mismatch")
	}
	if numClasses <= 0 {
		return 0
	}
	var sum float64
	for c := 0; c < numClasses; c++ {
		var tp, fp, fn float64
		for i := range pred {
			switch {
			case pred[i] == c && truth[i] == c:
				tp++
			case pred[i] == c && truth[i] != c:
				fp++
			case pred[i] != c && truth[i] == c:
				fn++
			}
		}
		if tp == 0 {
			continue // F1 for this class is 0
		}
		precision := tp / (tp + fp)
		recall := tp / (tp + fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	return sum / float64(numClasses)
}

// ArgMax returns the index of the largest element of xs (first on ties).
// It panics on an empty slice.
func ArgMax(xs []float32) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements of xs in descending
// order. k is clamped to len(xs).
func TopK(xs []float32, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	if s := Std(xs); !approx(s, 2, 1e-12) {
		t.Fatalf("std = %v, want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input must yield 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Must not mutate input order.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{-0.001, 0.0005, 0.1, -0.2, 0}
	if got := FractionWithin(xs, 0.001); !approx(got, 3.0/5, 1e-12) {
		t.Fatalf("FractionWithin = %v, want 0.6", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	zs := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, zs); !approx(got, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	flat := []float64{1, 1, 1, 1, 1}
	if got := Pearson(xs, flat); got != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 16)
		ys := make([]float64, 16)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := range xs {
			xs[i], ys[i] = next(), next()
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	h.AddAll([]float64{-0.9, -0.1, 0.1, 0.9, 5, -5})
	if h.Total != 6 {
		t.Fatalf("total = %d, want 6", h.Total)
	}
	// Out-of-range values are clamped into boundary bins.
	if h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Fatalf("boundary bins = %v", h.Counts)
	}
	if got := h.BinCenter(0); !approx(got, -0.75, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.Fraction(1); !approx(got, 1.0/6, 1e-12) {
		t.Fatalf("Fraction(1) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate histogram must panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{nil, []string{"a", "b"}, 2},
		{[]string{"conv", "relu", "pool"}, []string{"conv", "relu", "pool"}, 0},
		{[]string{"conv", "relu"}, []string{"conv", "pool"}, 1},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Fatalf("Levenshtein(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b []string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c []string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		if len(c) > 12 {
			c = c[:12]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLER(t *testing.T) {
	truth := []string{"conv", "relu", "pool", "fc"}
	if got := LER(truth, truth); got != 0 {
		t.Fatalf("identical LER = %v", got)
	}
	pred := []string{"x", "y", "z", "w", "v", "u", "t", "s"}
	if got := LER(pred, truth); got <= 1 {
		t.Fatalf("useless prediction should have LER > 1, got %v", got)
	}
}

func TestAccuracyAndMatchRate(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); !approx(got, 2.0/3, 1e-12) {
		t.Fatalf("accuracy = %v", got)
	}
	if got := MatchRate([]int{0, 0}, []int{0, 1}); !approx(got, 0.5, 1e-12) {
		t.Fatalf("match rate = %v", got)
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect prediction.
	if got := MacroF1([]int{0, 1, 0, 1}, []int{0, 1, 0, 1}, 2); !approx(got, 1, 1e-12) {
		t.Fatalf("perfect F1 = %v", got)
	}
	// All-wrong prediction.
	if got := MacroF1([]int{1, 0}, []int{0, 1}, 2); got != 0 {
		t.Fatalf("all-wrong F1 = %v", got)
	}
	// Hand-computed mixed case: pred favors class 0.
	pred := []int{0, 0, 0, 1}
	truth := []int{0, 1, 0, 1}
	// class 0: tp=2 fp=1 fn=0 -> p=2/3 r=1 f1=0.8
	// class 1: tp=1 fp=0 fn=1 -> p=1 r=0.5 f1=2/3
	want := (0.8 + 2.0/3) / 2
	if got := MacroF1(pred, truth, 2); !approx(got, want, 1e-12) {
		t.Fatalf("mixed F1 = %v, want %v", got, want)
	}
}

func TestArgMaxTopK(t *testing.T) {
	xs := []float32{0.1, 0.9, 0.5, 0.9}
	if got := ArgMax(xs); got != 1 {
		t.Fatalf("ArgMax = %d, want first max index 1", got)
	}
	top := TopK(xs, 3)
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := TopK(xs, 99); len(got) != 4 {
		t.Fatalf("TopK clamp failed: %v", got)
	}
}

// Package task generates the synthetic downstream datasets the zoo's
// models are fine-tuned on. It stands in for the paper's GLUE benchmark
// and SQuAD (DESIGN.md §2): nine GLUE-analog classification tasks plus a
// QA-analog, each a seeded token-pattern classification problem that the
// scaled-down transformers genuinely learn with gradient descent.
package task

import (
	"fmt"

	"decepticon/internal/rng"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// Task describes one downstream task.
type Task struct {
	Name   string
	Labels int
	SeqLen int
	// PerLabel is the number of marker tokens per label (default 3). The
	// zoo's generic pre-training objective uses many labels with many
	// markers so that the backbone learns to encode most of the
	// vocabulary into CLS — the analog of masked-language-model
	// pre-training coverage, and the reason downstream heads can be
	// fine-tuned cheaply.
	PerLabel int
}

// GLUEAnalogs returns the nine GLUE-analog tasks (Fig 5 fine-tunes one
// pre-trained model on each of them).
func GLUEAnalogs() []Task {
	names := []struct {
		name   string
		labels int
	}{
		{"cola", 2}, {"sst2", 2}, {"mrpc", 2}, {"stsb", 3}, {"qqp", 2},
		{"mnli", 3}, {"qnli", 2}, {"rte", 2}, {"wnli", 2},
	}
	out := make([]Task, len(names))
	for i, n := range names {
		out[i] = Task{Name: n.name, Labels: n.labels, SeqLen: 12}
	}
	return out
}

// QAAnalog returns the SQuAD-analog task: the model must classify which of
// four marker groups carries the "answer" for the query pattern.
func QAAnalog() Task { return Task{Name: "squad", Labels: 4, SeqLen: 14} }

// ByName returns the named task.
func ByName(name string) (Task, error) {
	if name == "squad" {
		return QAAnalog(), nil
	}
	for _, t := range GLUEAnalogs() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("task: unknown task %q", name)
}

// markerSets derives, per label, a disjoint set of marker token ids from
// the task name. The marker tokens are what the model learns to detect.
func (t Task) markerSets(vocabSize int) [][]int {
	r := rng.New(rng.Seed("task-markers", t.Name))
	perm := r.Perm(vocabSize - tokenizer.ReservedTokens)
	perLabel := t.PerLabel
	if perLabel <= 0 {
		perLabel = 3
	}
	sets := make([][]int, t.Labels)
	idx := 0
	for l := 0; l < t.Labels; l++ {
		for k := 0; k < perLabel; k++ {
			sets[l] = append(sets[l], perm[idx]+tokenizer.ReservedTokens)
			idx++
		}
	}
	return sets
}

// Generate produces n labeled examples over a vocabulary of vocabSize ids.
// Every example starts with CLS, contains 1-2 marker tokens of its label
// class, and is padded with non-marker filler tokens. The generator is
// deterministic in (task, vocabSize, seed).
func (t Task) Generate(vocabSize, n int, seed uint64) []transformer.Example {
	perLabel := t.PerLabel
	if perLabel <= 0 {
		perLabel = 3
	}
	if vocabSize <= tokenizer.ReservedTokens+t.Labels*perLabel {
		panic(fmt.Sprintf("task: vocab %d too small for %d labels", vocabSize, t.Labels))
	}
	r := rng.New(rng.Seed("task-data", t.Name) ^ seed)
	sets := t.markerSets(vocabSize)
	isMarker := make(map[int]bool)
	for _, s := range sets {
		for _, id := range s {
			isMarker[id] = true
		}
	}
	filler := func() int {
		for {
			id := tokenizer.ReservedTokens + r.Intn(vocabSize-tokenizer.ReservedTokens)
			if !isMarker[id] {
				return id
			}
		}
	}
	out := make([]transformer.Example, n)
	for i := 0; i < n; i++ {
		label := i % t.Labels
		tokens := make([]int, t.SeqLen)
		tokens[0] = tokenizer.CLS
		for j := 1; j < t.SeqLen; j++ {
			tokens[j] = filler()
		}
		markers := 2 + r.Intn(2)
		for k := 0; k < markers; k++ {
			pos := 1 + r.Intn(t.SeqLen-1)
			set := sets[label]
			tokens[pos] = set[r.Intn(len(set))]
		}
		out[i] = transformer.Example{Tokens: tokens, Label: label}
	}
	return out
}

// GenerateMLM produces the zoo's generic pre-training data: a scaled-down
// analog of masked-language-model pre-training. Each example is a random
// token sequence whose label is the id of one token present in it; to
// minimize the loss the model must surface the identity of *every* token
// in its CLS representation, which is exactly the transferable
// "bag-of-tokens" encoding that makes cheap downstream head fine-tuning
// possible. The label space is the whole vocabulary.
func GenerateMLM(vocabSize, seqLen, n int, seed uint64) []transformer.Example {
	if vocabSize <= tokenizer.ReservedTokens+1 {
		panic("task: vocab too small for MLM-analog pre-training")
	}
	r := rng.New(rng.Seed("mlm-data") ^ seed)
	out := make([]transformer.Example, n)
	for i := 0; i < n; i++ {
		tokens := make([]int, seqLen)
		tokens[0] = tokenizer.CLS
		for j := 1; j < seqLen; j++ {
			tokens[j] = tokenizer.ReservedTokens + r.Intn(vocabSize-tokenizer.ReservedTokens)
		}
		label := tokens[1+r.Intn(seqLen-1)]
		out[i] = transformer.Example{Tokens: tokens, Label: label}
	}
	return out
}

// Split divides examples into train and dev portions (trainFrac in (0,1)).
func Split(examples []transformer.Example, trainFrac float64) (train, dev []transformer.Example) {
	cut := int(float64(len(examples)) * trainFrac)
	if cut <= 0 {
		cut = 1
	}
	if cut >= len(examples) {
		cut = len(examples) - 1
	}
	return examples[:cut], examples[cut:]
}

// Subset returns the first frac (0,1] of examples — the Fig 17 "attacker
// has x% of the fine-tuning data" scenario. It always returns at least one
// example per label where possible.
func Subset(examples []transformer.Example, frac float64) []transformer.Example {
	n := int(float64(len(examples)) * frac)
	if n < 1 {
		n = 1
	}
	if n > len(examples) {
		n = len(examples)
	}
	return examples[:n]
}

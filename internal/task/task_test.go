package task

import (
	"testing"

	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

func TestGLUEAnalogs(t *testing.T) {
	tasks := GLUEAnalogs()
	if len(tasks) != 9 {
		t.Fatalf("want 9 GLUE-analog tasks, got %d", len(tasks))
	}
	seen := map[string]bool{}
	for _, tk := range tasks {
		if seen[tk.Name] {
			t.Fatalf("duplicate task %q", tk.Name)
		}
		seen[tk.Name] = true
		if tk.Labels < 2 {
			t.Fatalf("task %q has %d labels", tk.Name, tk.Labels)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mnli"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("squad"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown task must error")
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	tk, _ := ByName("sst2")
	a := tk.Generate(96, 50, 7)
	b := tk.Generate(96, 50, 7)
	if len(a) != 50 {
		t.Fatalf("want 50 examples, got %d", len(a))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("generation must be deterministic")
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatal("generation must be deterministic")
			}
		}
		if a[i].Tokens[0] != tokenizer.CLS {
			t.Fatal("examples must start with CLS")
		}
		if len(a[i].Tokens) != tk.SeqLen {
			t.Fatalf("sequence length %d, want %d", len(a[i].Tokens), tk.SeqLen)
		}
		if a[i].Label < 0 || a[i].Label >= tk.Labels {
			t.Fatalf("label %d out of range", a[i].Label)
		}
	}
	c := tk.Generate(96, 50, 8)
	diff := false
	for i := range a {
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != c[i].Tokens[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds must give different data")
	}
}

func TestLabelsBalanced(t *testing.T) {
	tk, _ := ByName("mnli")
	data := tk.Generate(96, 90, 1)
	counts := make([]int, tk.Labels)
	for _, ex := range data {
		counts[ex.Label]++
	}
	for l, c := range counts {
		if c != 30 {
			t.Fatalf("label %d count %d, want 30", l, c)
		}
	}
}

func TestTasksAreLearnable(t *testing.T) {
	// A small transformer must learn a task from its marker structure —
	// the property the whole zoo construction relies on.
	tk, _ := ByName("qnli")
	cfg := transformer.Config{
		Name: "probe", Layers: 2, Hidden: 16, Heads: 2, FFN: 32,
		Vocab: 96, MaxSeq: 16, Labels: tk.Labels,
	}
	m := transformer.New(cfg, 1)
	data := tk.Generate(96, 120, 2)
	train, dev := Split(data, 0.8)
	m.Train(train, transformer.TrainConfig{Epochs: 10, BatchSize: 8, LR: 3e-3, Seed: 3})
	if acc := m.Evaluate(dev); acc < 0.75 {
		t.Fatalf("dev accuracy %v < 0.75 — tasks not learnable", acc)
	}
}

func TestDifferentTasksUseDifferentMarkers(t *testing.T) {
	a, _ := ByName("cola")
	b, _ := ByName("rte")
	sa := a.markerSets(96)
	sb := b.markerSets(96)
	same := true
	for i := range sa {
		if i >= len(sb) {
			break
		}
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("tasks must have distinct marker sets")
	}
}

func TestSplitAndSubset(t *testing.T) {
	tk, _ := ByName("wnli")
	data := tk.Generate(96, 40, 1)
	train, dev := Split(data, 0.8)
	if len(train) != 32 || len(dev) != 8 {
		t.Fatalf("split %d/%d", len(train), len(dev))
	}
	if got := Subset(data, 0.25); len(got) != 10 {
		t.Fatalf("Subset(0.25) len %d", len(got))
	}
	if got := Subset(data, 0.0001); len(got) != 1 {
		t.Fatalf("tiny subset len %d", len(got))
	}
	if got := Subset(data, 2); len(got) != 40 {
		t.Fatalf("over-subset len %d", len(got))
	}
}

func TestGenerateVocabTooSmallPanics(t *testing.T) {
	tk := QAAnalog()
	defer func() {
		if recover() == nil {
			t.Fatal("tiny vocab must panic")
		}
	}()
	tk.Generate(10, 5, 1)
}

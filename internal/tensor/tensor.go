// Package tensor implements the float32 matrix arithmetic that underlies
// every model in the repository (the victim transformers, the fingerprint
// CNN, the ResNet analog). float32 is used throughout because Decepticon's
// selective weight extraction operates on IEEE 754 binary32 bit patterns.
package tensor

import (
	"fmt"
	"math"

	"decepticon/internal/rng"
)

// Matrix is a dense, row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix. It panics if
// the length does not match.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Randn returns a rows×cols matrix with i.i.d. Gaussian entries of the
// given standard deviation.
func Randn(rows, cols int, std float64, r *rng.RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, std)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing m's storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies o's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, o.Data)
}

// shapeCheck panics unless a and b have identical shapes.
func shapeCheck(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// axpy computes dst += s * src for equal-length slices. It is the shared
// inner kernel of the gemm variants, written so the compiler can eliminate
// bounds checks.
func axpy(dst, src []float32, s float32) {
	if s == 0 {
		return
	}
	n := len(src)
	dst = dst[:n]
	for ; n >= 4; n -= 4 {
		dst[n-1] += s * src[n-1]
		dst[n-2] += s * src[n-2]
		dst[n-3] += s * src[n-3]
		dst[n-4] += s * src[n-4]
	}
	for i := 0; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// axpy4 computes dst += s0*a0 + s1*a1 + s2*a2 + s3*a3 in one fused pass —
// the k-blocked inner kernel of MatMul/MatMulTN. Go evaluates float
// expressions left to right without reassociation, so the fused update is
// bit-identical to four sequential axpy calls. A zero scalar falls back to
// the per-lane path: axpy skips s == 0 entirely (no 0*Inf → NaN, no
// -0 + +0 sign normalization), and the fused form must not differ.
func axpy4(dst, a0, a1, a2, a3 []float32, s0, s1, s2, s3 float32) {
	if s0 == 0 || s1 == 0 || s2 == 0 || s3 == 0 {
		axpy(dst, a0, s0)
		axpy(dst, a1, s1)
		axpy(dst, a2, s2)
		axpy(dst, a3, s3)
		return
	}
	n := len(dst)
	a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
	for j := 0; j < n; j++ {
		dst[j] = dst[j] + s0*a0[j] + s1*a1[j] + s2*a2[j] + s3*a3[j]
	}
}

// dot returns the inner product of two equal-length slices with four-way
// unrolling.
func dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot4 computes the inner products of a against four b rows in one pass,
// reusing each load of a across the rows. Every output replicates dot's
// exact four-accumulator pattern and tail, so dot4(a, b0..b3) is
// bit-identical to four dot calls.
func dot4(a, b0, b1, b2, b3 []float32) (r0, r1, r2, r3 float32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	var s20, s21, s22, s23 float32
	var s30, s31, s32, s33 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		av0, av1, av2, av3 := a[i], a[i+1], a[i+2], a[i+3]
		s00 += av0 * b0[i]
		s01 += av1 * b0[i+1]
		s02 += av2 * b0[i+2]
		s03 += av3 * b0[i+3]
		s10 += av0 * b1[i]
		s11 += av1 * b1[i+1]
		s12 += av2 * b1[i+2]
		s13 += av3 * b1[i+3]
		s20 += av0 * b2[i]
		s21 += av1 * b2[i+1]
		s22 += av2 * b2[i+2]
		s23 += av3 * b2[i+3]
		s30 += av0 * b3[i]
		s31 += av1 * b3[i+1]
		s32 += av2 * b3[i+2]
		s33 += av3 * b3[i+3]
	}
	r0 = s00 + s01 + s02 + s03
	r1 = s10 + s11 + s12 + s13
	r2 = s20 + s21 + s22 + s23
	r3 = s30 + s31 + s32 + s33
	for ; i < n; i++ {
		av := a[i]
		r0 += av * b0[i]
		r1 += av * b1[i]
		r2 += av * b2[i]
		r3 += av * b3[i]
	}
	return r0, r1, r2, r3
}

// MatMul returns a × b (a: m×k, b: k×n).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		k := 0
		for ; k+4 <= len(arow); k += 4 {
			axpy4(orow,
				b.Data[k*n:(k+1)*n], b.Data[(k+1)*n:(k+2)*n],
				b.Data[(k+2)*n:(k+3)*n], b.Data[(k+3)*n:(k+4)*n],
				arow[k], arow[k+1], arow[k+2], arow[k+3])
		}
		for ; k < len(arow); k++ {
			axpy(orow, b.Data[k*n:(k+1)*n], arow[k])
		}
	}
	return out
}

// MatMulNT returns a × bᵀ (a: m×k, b: n×k).
func MatMulNT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT inner dim mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		j := 0
		for ; j+4 <= len(orow); j += 4 {
			orow[j], orow[j+1], orow[j+2], orow[j+3] = dot4(arow,
				b.Data[j*k:(j+1)*k], b.Data[(j+1)*k:(j+2)*k],
				b.Data[(j+2)*k:(j+3)*k], b.Data[(j+3)*k:(j+4)*k])
		}
		for ; j < len(orow); j++ {
			orow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
	return out
}

// MatMulTN returns aᵀ × b (a: k×m, b: k×n).
func MatMulTN(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTN inner dim mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	m := a.Cols
	k := 0
	// k-blocked: each output row i accumulates its four k contributions in
	// the original k order, so per-element rounding order is unchanged.
	for ; k+4 <= a.Rows; k += 4 {
		a0 := a.Data[k*m : (k+1)*m]
		a1 := a.Data[(k+1)*m : (k+2)*m]
		a2 := a.Data[(k+2)*m : (k+3)*m]
		a3 := a.Data[(k+3)*m : (k+4)*m]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for i := 0; i < m; i++ {
			axpy4(out.Data[i*n:(i+1)*n], b0, b1, b2, b3, a0[i], a1[i], a2[i], a3[i])
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			axpy(out.Data[i*n:(i+1)*n], brow, av)
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Matrix) *Matrix {
	shapeCheck("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Matrix) *Matrix {
	shapeCheck("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeCheck("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	shapeCheck("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector adds the 1×Cols vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SumRows returns the column-wise sum of m as a length-Cols slice — the
// bias gradient for a dense layer.
func (m *Matrix) SumRows() []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			out[j] += row[j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of m,
// returning a new matrix.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// GELU applies the tanh-approximation GELU activation element-wise,
// returning a new matrix.
func GELU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = gelu(x)
	}
	return out
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float32) float32 {
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(geluC*(xf+0.044715*xf*xf*xf))))
}

// GELUGrad returns the element-wise derivative of GELU evaluated at m.
func GELUGrad(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = geluGrad(x)
	}
	return out
}

func geluGrad(x float32) float32 {
	xf := float64(x)
	inner := geluC * (xf + 0.044715*xf*xf*xf)
	t := math.Tanh(inner)
	dInner := geluC * (1 + 3*0.044715*xf*xf)
	return float32(0.5*(1+t) + 0.5*xf*(1-t*t)*dInner)
}

// ReLU applies max(0, x) element-wise, returning a new matrix.
func ReLU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		if x > 0 {
			out.Data[i] = x
		}
	}
	return out
}

// ReLUGradMask returns 1 where m > 0 and 0 elsewhere.
func ReLUGradMask(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		if x > 0 {
			out.Data[i] = 1
		}
	}
	return out
}

// Tanh applies tanh element-wise, returning a new matrix.
func Tanh(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = float32(math.Tanh(float64(x)))
	}
	return out
}

// MaxAbs returns the largest absolute element value of m (0 for empty).
func (m *Matrix) MaxAbs() float32 {
	var best float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > best {
			best = v
		}
	}
	return best
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MeanAbsDiff returns mean |a - b| over all elements. It is the paper's
// "average weight value gap" metric (Figs 3-6, 19).
func MeanAbsDiff(a, b *Matrix) float64 {
	shapeCheck("MeanAbsDiff", a, b)
	if len(a.Data) == 0 {
		return 0
	}
	var s float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a.Data))
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// Package tensor implements the float32 matrix arithmetic that underlies
// every model in the repository (the victim transformers, the fingerprint
// CNN, the ResNet analog). float32 is used throughout because Decepticon's
// selective weight extraction operates on IEEE 754 binary32 bit patterns.
package tensor

import (
	"fmt"
	"math"

	"decepticon/internal/rng"
)

// Matrix is a dense, row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix. It panics if
// the length does not match.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Randn returns a rows×cols matrix with i.i.d. Gaussian entries of the
// given standard deviation.
func Randn(rows, cols int, std float64, r *rng.RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, std)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing m's storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies o's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, o.Data)
}

// shapeCheck panics unless a and b have identical shapes.
func shapeCheck(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// axpy computes dst += s * src for equal-length slices. It is the shared
// inner kernel of the gemm variants, written so the compiler can eliminate
// bounds checks.
func axpy(dst, src []float32, s float32) {
	if s == 0 {
		return
	}
	n := len(src)
	dst = dst[:n]
	for ; n >= 4; n -= 4 {
		dst[n-1] += s * src[n-1]
		dst[n-2] += s * src[n-2]
		dst[n-3] += s * src[n-3]
		dst[n-4] += s * src[n-4]
	}
	for i := 0; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// dot returns the inner product of two equal-length slices with four-way
// unrolling.
func dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// MatMul returns a × b (a: m×k, b: k×n).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			axpy(orow, b.Data[k*n:(k+1)*n], av)
		}
	}
	return out
}

// MatMulNT returns a × bᵀ (a: m×k, b: n×k).
func MatMulNT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT inner dim mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := range orow {
			orow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
	return out
}

// MatMulTN returns aᵀ × b (a: k×m, b: k×n).
func MatMulTN(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTN inner dim mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			axpy(out.Data[i*n:(i+1)*n], brow, av)
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Matrix) *Matrix {
	shapeCheck("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Matrix) *Matrix {
	shapeCheck("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeCheck("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	shapeCheck("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector adds the 1×Cols vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SumRows returns the column-wise sum of m as a length-Cols slice — the
// bias gradient for a dense layer.
func (m *Matrix) SumRows() []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			out[j] += row[j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of m,
// returning a new matrix.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// GELU applies the tanh-approximation GELU activation element-wise,
// returning a new matrix.
func GELU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = gelu(x)
	}
	return out
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float32) float32 {
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(geluC*(xf+0.044715*xf*xf*xf))))
}

// GELUGrad returns the element-wise derivative of GELU evaluated at m.
func GELUGrad(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = geluGrad(x)
	}
	return out
}

func geluGrad(x float32) float32 {
	xf := float64(x)
	inner := geluC * (xf + 0.044715*xf*xf*xf)
	t := math.Tanh(inner)
	dInner := geluC * (1 + 3*0.044715*xf*xf)
	return float32(0.5*(1+t) + 0.5*xf*(1-t*t)*dInner)
}

// ReLU applies max(0, x) element-wise, returning a new matrix.
func ReLU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		if x > 0 {
			out.Data[i] = x
		}
	}
	return out
}

// ReLUGradMask returns 1 where m > 0 and 0 elsewhere.
func ReLUGradMask(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		if x > 0 {
			out.Data[i] = 1
		}
	}
	return out
}

// Tanh applies tanh element-wise, returning a new matrix.
func Tanh(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = float32(math.Tanh(float64(x)))
	}
	return out
}

// MaxAbs returns the largest absolute element value of m (0 for empty).
func (m *Matrix) MaxAbs() float32 {
	var best float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > best {
			best = v
		}
	}
	return best
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MeanAbsDiff returns mean |a - b| over all elements. It is the paper's
// "average weight value gap" metric (Figs 3-6, 19).
func MeanAbsDiff(a, b *Matrix) float64 {
	shapeCheck("MeanAbsDiff", a, b)
	if len(a.Data) == 0 {
		return 0
	}
	var s float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a.Data))
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"decepticon/internal/rng"
)

func TestMatMulHandChecked(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !ApproxEqual(got, want, 0) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	r := rng.New(1)
	a := Randn(5, 7, 1, r)
	b := Randn(7, 4, 1, r)
	base := MatMul(a, b)
	// a×b == a×(bᵀ)ᵀ via MatMulNT.
	nt := MatMulNT(a, b.Transpose())
	if !ApproxEqual(base, nt, 1e-5) {
		t.Fatal("MatMulNT disagrees with MatMul")
	}
	// a×b == (aᵀ)ᵀ×b via MatMulTN.
	tn := MatMulTN(a.Transpose(), b)
	if !ApproxEqual(base, tn, 1e-5) {
		t.Fatal("MatMulTN disagrees with MatMul")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul must panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 1+int(seed%6), 1+int((seed>>8)%6)
		m := Randn(rows, cols, 1, r)
		return ApproxEqual(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{5, 6, 7, 8})
	if !ApproxEqual(Add(a, b), FromSlice(2, 2, []float32{6, 8, 10, 12}), 0) {
		t.Fatal("Add wrong")
	}
	if !ApproxEqual(Sub(b, a), FromSlice(2, 2, []float32{4, 4, 4, 4}), 0) {
		t.Fatal("Sub wrong")
	}
	if !ApproxEqual(Hadamard(a, b), FromSlice(2, 2, []float32{5, 12, 21, 32}), 0) {
		t.Fatal("Hadamard wrong")
	}
	// a unchanged (non-destructive).
	if a.Data[0] != 1 {
		t.Fatal("Add must not mutate inputs")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Randn(3, 4, 2, r)
		b := Randn(3, 4, 2, r)
		return ApproxEqual(Sub(Add(a, b), b), a, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 1000, 1000, 1000})
	s := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var sum float32
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Monotone: larger logits -> larger probabilities.
	if !(s.At(0, 0) < s.At(0, 1) && s.At(0, 1) < s.At(0, 2)) {
		t.Fatal("softmax not monotone")
	}
	// Numerically stable at 1000s: uniform row.
	if math.Abs(float64(s.At(1, 0)-1.0/3)) > 1e-5 {
		t.Fatal("softmax overflowed on large inputs")
	}
}

// numericGrad computes (f(x+h) - f(x-h)) / 2h for a scalar activation.
func numericGrad(f func(float32) float32, x float32) float64 {
	const h = 1e-3
	return (float64(f(x+h)) - float64(f(x-h))) / (2 * h)
}

func TestGELUGradientMatchesNumeric(t *testing.T) {
	for _, x := range []float32{-3, -1, -0.1, 0, 0.1, 1, 3} {
		m := FromSlice(1, 1, []float32{x})
		analytic := float64(GELUGrad(m).Data[0])
		numeric := numericGrad(func(v float32) float32 {
			return GELU(FromSlice(1, 1, []float32{v})).Data[0]
		}, x)
		if math.Abs(analytic-numeric) > 1e-2 {
			t.Fatalf("GELU'(%v): analytic %v vs numeric %v", x, analytic, numeric)
		}
	}
}

func TestGELULimits(t *testing.T) {
	big := GELU(FromSlice(1, 1, []float32{10})).Data[0]
	if math.Abs(float64(big-10)) > 1e-3 {
		t.Fatalf("GELU(10) = %v, want ~10", big)
	}
	small := GELU(FromSlice(1, 1, []float32{-10})).Data[0]
	if math.Abs(float64(small)) > 1e-3 {
		t.Fatalf("GELU(-10) = %v, want ~0", small)
	}
}

func TestReLUAndMask(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	r := ReLU(m)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 || r.Data[3] != 0 {
		t.Fatalf("ReLU = %v", r.Data)
	}
	mask := ReLUGradMask(m)
	if mask.Data[0] != 0 || mask.Data[2] != 1 {
		t.Fatalf("ReLU mask = %v", mask.Data)
	}
}

func TestRowVectorAndSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	m.AddRowVector([]float32{10, 20, 30})
	if m.At(1, 2) != 36 {
		t.Fatalf("AddRowVector: %v", m.Data)
	}
	s := m.SumRows()
	if s[0] != 25 || s[1] != 47 || s[2] != 69 {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := FromSlice(1, 4, []float32{1, 2, 3, 4})
	b := FromSlice(1, 4, []float32{2, 2, 1, 4})
	if got := MeanAbsDiff(a, b); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("MeanAbsDiff = %v, want 0.75", got)
	}
	if MeanAbsDiff(a, a) != 0 {
		t.Fatal("self diff must be 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestRandnMoments(t *testing.T) {
	r := rng.New(3)
	m := Randn(100, 100, 0.02, r)
	var sum, sumSq float64
	for _, v := range m.Data {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(m.Data))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.001 {
		t.Fatalf("Randn mean %v", mean)
	}
	if math.Abs(std-0.02) > 0.002 {
		t.Fatalf("Randn std %v, want 0.02", std)
	}
}

func TestMaxAbsFrobenius(t *testing.T) {
	m := FromSlice(1, 3, []float32{3, -4, 0})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.Frobenius()-5) > 1e-9 {
		t.Fatalf("Frobenius = %v", m.Frobenius())
	}
}

func TestScaleAndZero(t *testing.T) {
	m := FromSlice(1, 2, []float32{2, -4})
	m.Scale(0.5)
	if m.Data[0] != 1 || m.Data[1] != -2 {
		t.Fatalf("Scale = %v", m.Data)
	}
	m.Zero()
	if m.Data[0] != 0 || m.Data[1] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	FromSlice(2, 2, []float32{1})
}

func TestMatMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Randn(3, 4, 1, r)
		b := Randn(4, 5, 1, r)
		c := Randn(5, 2, 1, r)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return ApproxEqual(left, right, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Randn(3, 4, 1, r)
		b := Randn(4, 5, 1, r)
		c := Randn(4, 5, 1, r)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return ApproxEqual(left, right, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// naiveMatMul mirrors the pre-blocking scalar loop: one axpy per (row, k),
// in the original k order. The blocked kernels must match it bit for bit.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			axpy(orow, b.Data[k*n:(k+1)*n], av)
		}
	}
	return out
}

func naiveMatMulNT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := range orow {
			orow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
	return out
}

func naiveMatMulTN(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			axpy(out.Data[i*n:(i+1)*n], brow, av)
		}
	}
	return out
}

// bitEqual reports exact bit-pattern equality (ApproxEqual with tol 0
// would conflate -0 with +0 and fail on NaN).
func bitEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestBlockedGemmBitIdentical pins the blocking refactor to the original
// scalar loops: the reordered loads must not change a single rounding.
// Shapes cover block-multiple, remainder, and degenerate dims; the
// sparsify pass exercises the zero-scalar fallback inside axpy4.
func TestBlockedGemmBitIdentical(t *testing.T) {
	r := rng.New(7)
	shapes := [][2][2]int{
		{{4, 8}, {8, 12}},
		{{5, 7}, {7, 3}},
		{{1, 1}, {1, 1}},
		{{3, 4}, {4, 9}},
		{{2, 13}, {13, 6}},
		{{6, 16}, {16, 16}},
	}
	for _, sparse := range []bool{false, true} {
		for _, sh := range shapes {
			a := Randn(sh[0][0], sh[0][1], 1, r)
			b := Randn(sh[1][0], sh[1][1], 1, r)
			if sparse {
				for i := range a.Data {
					if i%3 == 0 {
						a.Data[i] = 0
					}
				}
				for i := range b.Data {
					if i%4 == 1 {
						b.Data[i] = 0
					}
				}
			}
			if got, want := MatMul(a, b), naiveMatMul(a, b); !bitEqual(got, want) {
				t.Fatalf("MatMul %v sparse=%v not bit-identical to scalar loop", sh, sparse)
			}
			bt := b.Transpose()
			if got, want := MatMulNT(a, bt), naiveMatMulNT(a, bt); !bitEqual(got, want) {
				t.Fatalf("MatMulNT %v sparse=%v not bit-identical to scalar loop", sh, sparse)
			}
			at := a.Transpose()
			if got, want := MatMulTN(at, b), naiveMatMulTN(at, b); !bitEqual(got, want) {
				t.Fatalf("MatMulTN %v sparse=%v not bit-identical to scalar loop", sh, sparse)
			}
		}
	}
}

// TestBlockedGemmZeroTimesInf checks the corner the zero-scalar fallback
// exists for: a zero coefficient against a non-finite operand must skip
// (never produce 0×Inf = NaN), exactly as the scalar axpy did.
func TestBlockedGemmZeroTimesInf(t *testing.T) {
	a := FromSlice(1, 4, []float32{0, 2, 0, 3})
	b := New(4, 5)
	inf := float32(math.Inf(1))
	for j := 0; j < 5; j++ {
		b.Data[0*5+j] = inf // multiplied by a zero coefficient
		b.Data[2*5+j] = inf
		b.Data[1*5+j] = 1
		b.Data[3*5+j] = 2
	}
	got := MatMul(a, b)
	for j := 0; j < 5; j++ {
		if got.Data[j] != 8 {
			t.Fatalf("MatMul with zero×Inf lanes: got %v, want 8", got.Data[j])
		}
	}
}

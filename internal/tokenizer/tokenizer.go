// Package tokenizer provides synthetic, language-flavored vocabularies and
// a word-level tokenizer. It replaces the real models' vocab.txt/vocab.json
// files (paper §4.2 "Model signature in query outputs"): each pre-trained
// model release carries its own vocabulary, and differences in language,
// casing, and training corpus are exactly what the input-dependent model
// variant detector probes.
package tokenizer

import (
	"sort"
	"strings"

	"decepticon/internal/rng"
)

// Reserved token ids.
const (
	CLS = 0 // classification token, prepended to every input
	UNK = 1 // unknown word
)

// ReservedTokens is the number of special ids before real words start.
const ReservedTokens = 2

// Vocab is a model vocabulary: a deterministic set of synthetic words with
// language and casing flavor.
type Vocab struct {
	Name     string
	Language string // "en", "fr", "ru"
	Cased    bool
	Size     int // total ids including reserved tokens
	words    map[string]int
	list     []string // index = id - ReservedTokens
}

// letterInventory returns the character set used to synthesize words of a
// language. The inventories are disjoint enough that words from one
// language are almost never in another language's vocabulary — mirroring
// CamemBERT/RuBERT vs. English BERT.
func letterInventory(language string) []rune {
	switch language {
	case "fr":
		return []rune("éèàçùêâîôöœabcdefgilmnoprstuv")
	case "ru":
		return []rune("абвгдежзиклмнопрстуфхцчшыэюя")
	default: // en
		return []rune("etaoinshrdlucmfwypvbgkjqxz")
	}
}

// NewVocab builds a deterministic vocabulary of size ids (including the
// reserved CLS/UNK). Cased vocabularies contain a capitalized variant of
// roughly a third of their words as distinct entries; uncased vocabularies
// lowercase every lookup.
func NewVocab(name, language string, cased bool, size int, seed uint64) *Vocab {
	if size <= ReservedTokens {
		panic("tokenizer: vocabulary too small")
	}
	v := &Vocab{
		Name:     name,
		Language: language,
		Cased:    cased,
		Size:     size,
		words:    make(map[string]int, size),
	}
	letters := letterInventory(language)
	r := rng.New(rng.Seed("vocab", name, language) ^ seed)
	id := ReservedTokens
	for id < size {
		// Synthesize a word of 3-8 letters.
		n := 3 + r.Intn(6)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(letters[r.Intn(len(letters))])
		}
		w := b.String()
		if cased && r.Float64() < 0.33 {
			w = capitalize(w)
		}
		if _, dup := v.words[w]; dup {
			continue
		}
		v.words[w] = id
		v.list = append(v.list, w)
		id++
	}
	return v
}

func capitalize(w string) string {
	rs := []rune(w)
	rs[0] = []rune(strings.ToUpper(string(rs[0])))[0]
	return string(rs)
}

// Lookup returns the id of a word, or UNK. Uncased vocabularies fold case
// before lookup; cased vocabularies distinguish "Apple" from "apple".
func (v *Vocab) Lookup(word string) int {
	if !v.Cased {
		word = strings.ToLower(word)
	}
	if id, ok := v.words[word]; ok {
		return id
	}
	if !v.Cased {
		return UNK
	}
	// Cased vocabularies still find the other-cased variant if the exact
	// form is absent, as wordpiece vocabularies usually contain both.
	if id, ok := v.words[strings.ToLower(word)]; ok {
		return id
	}
	return UNK
}

// Contains reports whether the exact word form is in the vocabulary.
func (v *Vocab) Contains(word string) bool {
	if !v.Cased {
		word = strings.ToLower(word)
	}
	_, ok := v.words[word]
	return ok
}

// Tokenize splits text on whitespace, prepends CLS, and maps each word to
// its id (UNK for out-of-vocabulary words), truncating to maxLen ids.
func (v *Vocab) Tokenize(text string, maxLen int) []int {
	out := []int{CLS}
	for _, w := range strings.Fields(text) {
		if len(out) >= maxLen {
			break
		}
		out = append(out, v.Lookup(w))
	}
	return out
}

// Words returns the vocabulary's word list (excluding reserved ids) in id
// order. The slice is shared; callers must not modify it.
func (v *Vocab) Words() []string { return v.list }

// UniqueWords returns up to n words that are in v but in none of the other
// vocabularies — the probe words the variant detector sends (§5.3).
func (v *Vocab) UniqueWords(others []*Vocab, n int) []string {
	var out []string
	for _, w := range v.list {
		unique := true
		for _, o := range others {
			if o == v {
				continue
			}
			if o.Contains(w) {
				unique = false
				break
			}
		}
		if unique {
			out = append(out, w)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Overlap returns the fraction of v's words that are also in o.
func (v *Vocab) Overlap(o *Vocab) float64 {
	if len(v.list) == 0 {
		return 0
	}
	n := 0
	for _, w := range v.list {
		if o.Contains(w) {
			n++
		}
	}
	return float64(n) / float64(len(v.list))
}

// Restore rebuilds a vocabulary from its word list in id order — the
// inverse of Words(), used by zoo serialization.
func Restore(name, language string, cased bool, words []string) *Vocab {
	v := &Vocab{
		Name:     name,
		Language: language,
		Cased:    cased,
		Size:     len(words) + ReservedTokens,
		words:    make(map[string]int, len(words)),
		list:     append([]string(nil), words...),
	}
	for i, w := range v.list {
		v.words[w] = i + ReservedTokens
	}
	return v
}

// SortedWords returns a sorted copy of the word list (for stable output).
func (v *Vocab) SortedWords() []string {
	out := append([]string(nil), v.list...)
	sort.Strings(out)
	return out
}

package tokenizer

import (
	"strings"
	"testing"
)

func TestVocabDeterminism(t *testing.T) {
	a := NewVocab("bert-base", "en", false, 96, 1)
	b := NewVocab("bert-base", "en", false, 96, 1)
	wa, wb := a.SortedWords(), b.SortedWords()
	if len(wa) != len(wb) || len(wa) != 94 {
		t.Fatalf("vocab sizes %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed must give same vocabulary")
		}
	}
	c := NewVocab("bert-base", "en", false, 96, 2)
	if strings.Join(c.SortedWords(), " ") == strings.Join(wa, " ") {
		t.Fatal("different seeds must give different vocabularies")
	}
}

func TestLanguageFlavors(t *testing.T) {
	en := NewVocab("bert", "en", false, 96, 1)
	fr := NewVocab("camembert", "fr", false, 96, 1)
	ru := NewVocab("rubert", "ru", false, 96, 1)
	if en.Overlap(fr) > 0.2 || en.Overlap(ru) > 0.05 || fr.Overlap(ru) > 0.05 {
		t.Fatalf("language vocabularies overlap too much: en/fr=%v en/ru=%v fr/ru=%v",
			en.Overlap(fr), en.Overlap(ru), fr.Overlap(ru))
	}
	// Cyrillic words can never appear in the Latin inventories.
	for _, w := range ru.Words() {
		if en.Contains(w) {
			t.Fatalf("russian word %q found in english vocab", w)
		}
	}
}

func TestCasedVsUncased(t *testing.T) {
	cased := NewVocab("bert-cased", "en", true, 128, 1)
	var capitalized string
	for _, w := range cased.Words() {
		if w != strings.ToLower(w) {
			capitalized = w
			break
		}
	}
	if capitalized == "" {
		t.Fatal("cased vocabulary must contain capitalized words")
	}
	// Cased vocab distinguishes forms but still resolves a lowercase
	// lookup of a capitalized entry via fold-back.
	if cased.Lookup(capitalized) == UNK {
		t.Fatal("capitalized word must resolve in cased vocab")
	}
	uncased := NewVocab("bert-uncased", "en", false, 128, 1)
	for _, w := range uncased.Words() {
		if w != strings.ToLower(w) {
			t.Fatalf("uncased vocab contains capitalized word %q", w)
		}
	}
	// Uncased lookup folds case.
	some := uncased.Words()[0]
	if uncased.Lookup(strings.ToUpper(some)) != uncased.Lookup(some) {
		t.Fatal("uncased lookup must fold case")
	}
}

func TestTokenize(t *testing.T) {
	v := NewVocab("m", "en", false, 64, 3)
	w := v.Words()
	text := w[0] + " " + w[1] + " zzzz-not-a-word " + w[2]
	toks := v.Tokenize(text, 16)
	if toks[0] != CLS {
		t.Fatal("tokenization must start with CLS")
	}
	if toks[1] == UNK || toks[2] == UNK || toks[4] == UNK {
		t.Fatalf("in-vocab words tokenized to UNK: %v", toks)
	}
	if toks[3] != UNK {
		t.Fatalf("out-of-vocab word must be UNK: %v", toks)
	}
	// Truncation.
	long := strings.Repeat(w[0]+" ", 50)
	if got := v.Tokenize(long, 8); len(got) != 8 {
		t.Fatalf("truncation failed: len %d", len(got))
	}
}

func TestUniqueWords(t *testing.T) {
	a := NewVocab("a", "en", false, 96, 1)
	b := NewVocab("b", "en", false, 96, 2)
	fr := NewVocab("c", "fr", false, 96, 3)
	others := []*Vocab{a, b, fr}
	uniq := fr.UniqueWords(others, 8)
	if len(uniq) == 0 {
		t.Fatal("french vocab must have unique words vs english vocabs")
	}
	for _, w := range uniq {
		if a.Contains(w) || b.Contains(w) {
			t.Fatalf("word %q is not unique", w)
		}
		if !fr.Contains(w) {
			t.Fatalf("word %q not in its own vocab", w)
		}
	}
}

func TestIdsInRange(t *testing.T) {
	v := NewVocab("m", "ru", true, 80, 9)
	for _, w := range v.Words() {
		id := v.Lookup(w)
		if id < ReservedTokens || id >= 80 {
			t.Fatalf("id %d out of range for %q", id, w)
		}
	}
}

func TestTooSmallVocabPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny vocab must panic")
		}
	}()
	NewVocab("x", "en", false, 2, 1)
}

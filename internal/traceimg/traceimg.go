// Package traceimg converts time-series kernel execution traces into the
// 2-D grayscale images the pre-trained model extractor classifies
// (paper §5.4.2), and implements the trace analyses of §5.4.1 and §5.4.3:
// layer-count detection from repeating kernel groups (Fig 10) and
// XLA-region stripping for irregular traces (Fig 12).
package traceimg

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"

	"decepticon/internal/gpusim"
	"decepticon/internal/stats"
)

// Image is a square grayscale image with pixel values in [0, 1].
type Image struct {
	Size int
	Pix  []float32 // row-major, Size×Size
}

// NewImage returns a black image.
func NewImage(size int) *Image {
	if size <= 0 {
		panic("traceimg: non-positive image size")
	}
	return &Image{Size: size, Pix: make([]float32, size*size)}
}

// At returns the pixel at (x, y); y grows downward.
func (im *Image) At(x, y int) float32 { return im.Pix[y*im.Size+x] }

// YSpanUS is the fixed duration-axis span in µs; longer kernels clamp to
// the top row. The y scale must be shared across plots (the paper renders
// every trace "with the same x- and y-scales"): normalizing y by the
// per-trace peak would let a single perturbed kernel rescale the whole
// image and destroy the fingerprint. The x axis spans the trace duration —
// a single ±tens-of-µs kernel perturbation moves it only marginally.
const YSpanUS = 40.0

// Render plots a trace as the paper does: x is the kernel invocation time,
// y the kernel duration, axes square, unlabeled, intensity grayscale. The
// image is normalized so its brightest pixel is 1.
func Render(t *gpusim.Trace, size int) *Image {
	im := NewImage(size)
	if len(t.Execs) == 0 {
		return im
	}
	xspan := t.Duration()
	if xspan <= 0 {
		return im
	}
	// Accumulate and track the running maximum in the same pass: counts
	// only grow, so the max of post-increment values is the global max,
	// and the O(size²) scan over mostly-empty pixels disappears.
	pix := im.Pix
	sizeF := float64(size)
	yScale := float64(size - 1)
	var max float32
	for _, e := range t.Execs {
		x := int(e.Start / xspan * sizeF)
		if x >= size {
			x = size - 1
		}
		// y axis: duration, plotted upward (long kernels near the top of
		// the chart => small row index), clamped at the fixed span.
		frac := e.Duration() / YSpanUS
		if frac > 1 {
			frac = 1
		}
		y := size - 1 - int(frac*yScale)
		p := y*size + x
		v := pix[p] + 1
		pix[p] = v
		if v > max {
			max = v
		}
	}
	// max == 1 would scale by exactly 1; skip the pass entirely.
	if max > 1 {
		inv := 1 / max
		for i := range pix {
			pix[i] *= inv
		}
	}
	return im
}

// ASCII renders the image as terminal art (one character per pixel,
// darker glyphs for brighter pixels) — the quickest way to eyeball a
// fingerprint.
func (im *Image) ASCII() string {
	const ramp = " .:-=+*#%@"
	out := make([]byte, 0, (im.Size+1)*im.Size)
	for y := 0; y < im.Size; y++ {
		for x := 0; x < im.Size; x++ {
			v := im.At(x, y)
			idx := int(v * float32(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

// WriteCSV writes the trace as "index,name,start_us,end_us,duration_us"
// rows for external analysis.
func WriteCSV(t *gpusim.Trace, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "index,name,start_us,end_us,duration_us"); err != nil {
		return err
	}
	for i, e := range t.Execs {
		if _, err := fmt.Fprintf(w, "%d,%s,%.3f,%.3f,%.3f\n", i, e.Name, e.Start, e.End, e.Duration()); err != nil {
			return err
		}
	}
	return nil
}

// WritePNG encodes the image as an 8-bit grayscale PNG — the same artifact
// the paper feeds its CNN (Fig 11), for visual inspection.
func (im *Image) WritePNG(w io.Writer) error {
	g := image.NewGray(image.Rect(0, 0, im.Size, im.Size))
	for y := 0; y < im.Size; y++ {
		for x := 0; x < im.Size; x++ {
			g.SetGray(x, y, color.Gray{Y: uint8(im.At(x, y) * 255)})
		}
	}
	return png.Encode(w, g)
}

// StripMemcpy returns a copy of the trace without host↔device transfer
// events. Profilers report memcpys as a different event type than kernel
// launches, and the paper's fingerprint (§5.2) is the kernel execution
// timeline — bus transfers are a separate leakage channel (§3).
func StripMemcpy(t *gpusim.Trace) *gpusim.Trace {
	out := &gpusim.Trace{Model: t.Model}
	// Section spans are exec-index ranges, so removing execs invalidates
	// them: each boundary must slide left by the number of memcpys removed
	// before it (the mirror of sim.go, which shifts spans right when a
	// memcpy is inserted). removedBefore[i] counts removed execs in
	// Execs[:i]; it has len+1 entries so End == len(Execs) stays mappable.
	removedBefore := make([]int, len(t.Execs)+1)
	for i, e := range t.Execs {
		removedBefore[i+1] = removedBefore[i]
		if strings.HasPrefix(e.Name, "memcpy_") {
			removedBefore[i+1]++
			continue
		}
		out.Execs = append(out.Execs, e)
	}
	if t.Sections != nil {
		out.Sections = make([]gpusim.SectionSpan, len(t.Sections))
		for i, s := range t.Sections {
			start, end := s.Start, s.End
			if start < 0 {
				start = 0
			}
			if start > len(t.Execs) {
				start = len(t.Execs)
			}
			if end < 0 {
				end = 0
			}
			if end > len(t.Execs) {
				end = len(t.Execs)
			}
			out.Sections[i] = gpusim.SectionSpan{
				Name:  s.Name,
				Start: start - removedBefore[start],
				End:   end - removedBefore[end],
			}
		}
	}
	return out
}

// resample linearly resamples xs to n points.
func resample(xs []float64, n int) []float64 {
	out := make([]float64, n)
	if len(xs) == 0 {
		return out
	}
	if len(xs) == 1 {
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(n-1)
		lo := int(math.Floor(pos))
		hi := lo + 1
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[hi]*frac
	}
	return out
}

// periodScore measures how well the duration sequence splits into count
// equal repeating groups: the mean Pearson correlation between every
// segment's (resampled) duration profile and the first segment's.
func periodScore(durs []float64, count int) float64 {
	if count < 1 || len(durs) < 2*count {
		return -1
	}
	const profile = 24
	segLen := float64(len(durs)) / float64(count)
	ref := resample(durs[:int(segLen)], profile)
	var sum float64
	for s := 1; s < count; s++ {
		a := int(float64(s) * segLen)
		b := int(float64(s+1) * segLen)
		if b > len(durs) {
			b = len(durs)
		}
		if b-a < 2 {
			return -1
		}
		sum += stats.Pearson(ref, resample(durs[a:b], profile))
	}
	return sum / float64(count-1)
}

// DetectLayerCount recovers the number of encoder layers from the
// repetition of kernel groups in the trace (Fig 10). It searches over
// plausible layer counts and small head/tail trims (embedding and
// classifier kernels are not part of the repetition) and returns the
// largest count whose segments correlate almost perfectly; 0 means no
// repetition was found.
func DetectLayerCount(t *gpusim.Trace, maxLayers int) int {
	durs := t.Durations()
	best := 0
	bestScore := 0.0
	trims := []int{0, 1, 2, 3, 4, 6, 8}
	for _, head := range trims {
		for _, tail := range trims {
			if head+tail+4 > len(durs) {
				continue
			}
			body := durs[head : len(durs)-tail]
			for count := 2; count <= maxLayers; count++ {
				score := periodScore(body, count)
				// Prefer the largest count that still correlates near-perfectly:
				// a trace with true period P also correlates when split into
				// P/2 groups, so ties must resolve upward.
				if score > 0.995 && count > best {
					best = count
					bestScore = score
				} else if score > bestScore && best == 0 {
					bestScore = score
				}
			}
		}
	}
	return best
}

// XLARegion locates the mid-trace compilation/autotuning region of an
// XLA-style irregular trace (Fig 12) using only timing (the side channel
// does not expose kernel names). Encoder kernels repeat once per layer, so
// their durations have many near-duplicates across the trace; compilation
// and autotuning kernels have essentially unique durations. The region is
// the longest contiguous run of duration-wise unrepeated kernels. It
// returns half-open exec indices [start, end); found is false for regular
// traces.
func XLARegion(t *gpusim.Trace) (start, end int, found bool) {
	durs := t.Durations()
	if len(durs) < 16 {
		return 0, 0, false
	}
	// irregular[i]: fewer than 3 other kernels share (within 2%) kernel
	// i's duration.
	irregular := make([]bool, len(durs))
	for i, d := range durs {
		matches := 0
		for j, e := range durs {
			if j == i {
				continue
			}
			diff := d - e
			if diff < 0 {
				diff = -diff
			}
			if diff <= 0.02*d+0.05 {
				matches++
				if matches >= 3 {
					break
				}
			}
		}
		irregular[i] = matches < 3
	}
	bestLen, bestStart := 0, 0
	curLen, curStart := 0, 0
	for i, irr := range irregular {
		if irr {
			if curLen == 0 {
				curStart = i
			}
			curLen++
			if curLen > bestLen {
				bestLen, bestStart = curLen, curStart
			}
		} else {
			curLen = 0
		}
	}
	// A genuine compilation region is a sustained run; short irregular
	// stretches (embedding, classifier head) do not count.
	if bestLen < 5 {
		return 0, 0, false
	}
	return bestStart, bestStart + bestLen, true
}

// StripXLA returns a copy of the trace with the detected XLA region
// removed and the timeline stitched back together — the paper's
// pre-processing that recovers the encoder regions before classification.
// Regular traces are returned unchanged (as a copy).
func StripXLA(t *gpusim.Trace) *gpusim.Trace {
	start, end, found := XLARegion(t)
	if !found {
		return t.Clone()
	}
	out := &gpusim.Trace{Model: t.Model}
	gap := 0.0
	if end < len(t.Execs) && start > 0 {
		gap = t.Execs[end].Start - t.Execs[start].Start
	}
	for i, e := range t.Execs {
		if i >= start && i < end {
			continue
		}
		if i >= end {
			e.Start -= gap
			e.End -= gap
		}
		out.Execs = append(out.Execs, e)
	}
	return out
}

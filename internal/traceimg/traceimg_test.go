package traceimg

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"decepticon/internal/gpusim"
	"decepticon/internal/transformer"
)

func trace(name string, prof gpusim.Profile, opt gpusim.Options) *gpusim.Trace {
	cfg := transformer.Family()[name]
	return gpusim.SimulateTransformer(cfg, nil, prof, opt)
}

func TestRenderBasics(t *testing.T) {
	tr := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 1}, gpusim.Options{})
	im := Render(tr, 64)
	if im.Size != 64 || len(im.Pix) != 64*64 {
		t.Fatalf("image shape wrong")
	}
	var max, sum float32
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
		if v > max {
			max = v
		}
		sum += v
	}
	if max != 1 {
		t.Fatalf("image must be normalized to peak 1, got %v", max)
	}
	if sum == 0 {
		t.Fatal("image is empty")
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	im := Render(&gpusim.Trace{}, 16)
	for _, v := range im.Pix {
		if v != 0 {
			t.Fatal("empty trace must render black")
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	tr := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 2}, gpusim.Options{})
	a := Render(tr, 32)
	b := Render(tr, 32)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render must be deterministic")
		}
	}
}

func TestRenderDistinguishesReleases(t *testing.T) {
	a := Render(trace("base", gpusim.Profile{Source: "a", Framework: gpusim.PyTorch, Seed: 3}, gpusim.Options{}), 32)
	b := Render(trace("base", gpusim.Profile{Source: "b", Framework: gpusim.TensorFlow, Seed: 4}, gpusim.Options{}), 32)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different releases must render differently")
	}
}

func TestDetectLayerCountBaseVsLarge(t *testing.T) {
	for _, tc := range []struct {
		arch string
		want int
	}{
		{"base", transformer.Family()["base"].Layers},
		{"large", transformer.Family()["large"].Layers},
		{"tiny", transformer.Family()["tiny"].Layers},
	} {
		tr := trace(tc.arch, gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 5}, gpusim.Options{})
		got := DetectLayerCount(tr, 32)
		if got != tc.want {
			t.Fatalf("%s: detected %d layers, want %d", tc.arch, got, tc.want)
		}
	}
}

func TestDetectLayerCountSurvivesJitter(t *testing.T) {
	cfg := transformer.Family()["base"]
	tr := gpusim.SimulateTransformer(cfg, nil,
		gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 6},
		gpusim.Options{MeasureSeed: 7, JitterMagnitude: 0.5})
	if got := DetectLayerCount(tr, 32); got != cfg.Layers {
		t.Fatalf("jittered trace: detected %d, want %d", got, cfg.Layers)
	}
}

func TestDetectLayerCountMetaProfile(t *testing.T) {
	// The Meta profile inserts extra short kernels per layer; the
	// repetition count must still equal the layer count.
	cfg := transformer.Family()["medium"]
	tr := gpusim.SimulateTransformer(cfg, nil,
		gpusim.Profile{Source: "meta", Framework: gpusim.PyTorch, Seed: 8, ShortKernels: true},
		gpusim.Options{})
	if got := DetectLayerCount(tr, 32); got != cfg.Layers {
		t.Fatalf("meta profile: detected %d, want %d", got, cfg.Layers)
	}
}

func TestXLARegionDetection(t *testing.T) {
	xla := trace("large", gpusim.Profile{Source: "nvtf", Framework: gpusim.TensorFlow, Seed: 9, XLA: true}, gpusim.Options{})
	start, end, found := XLARegion(xla)
	if !found {
		t.Fatal("XLA region not found in XLA trace")
	}
	if start <= 0 || end >= len(xla.Execs) {
		t.Fatalf("XLA region [%d,%d) not interior to trace of %d", start, end, len(xla.Execs))
	}
	// Detected region must cover the actual autotune kernels.
	for i := start; i < end; i++ {
		name := xla.Execs[i].Name
		if len(name) < 4 || name[:4] != "xla_" {
			t.Fatalf("detected region includes non-XLA kernel %q at %d", name, i)
		}
	}

	regular := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 10}, gpusim.Options{})
	if _, _, found := XLARegion(regular); found {
		t.Fatal("regular trace must not report an XLA region")
	}
}

func TestStripXLARestoresTimeline(t *testing.T) {
	xla := trace("large", gpusim.Profile{Source: "nvtf", Framework: gpusim.TensorFlow, Seed: 11, XLA: true}, gpusim.Options{})
	stripped := StripXLA(xla)
	if len(stripped.Execs) >= len(xla.Execs) {
		t.Fatal("strip must remove kernels")
	}
	prev := 0.0
	for i, e := range stripped.Execs {
		if e.Start < prev-1e-9 || e.End <= e.Start {
			t.Fatalf("stitched timeline broken at %d", i)
		}
		prev = e.End
	}
	for _, e := range stripped.Execs {
		if len(e.Name) >= 4 && e.Name[:4] == "xla_" {
			t.Fatal("strip left XLA kernels behind")
		}
	}
	// Stripping a regular trace is a no-op copy.
	regular := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 12}, gpusim.Options{})
	if got := StripXLA(regular); len(got.Execs) != len(regular.Execs) {
		t.Fatal("regular trace must strip to itself")
	}
}

func TestResample(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	got := resample(xs, 7)
	if len(got) != 7 {
		t.Fatalf("resample length %d", len(got))
	}
	if got[0] != 0 || got[6] != 3 {
		t.Fatalf("resample endpoints %v", got)
	}
	if got[3] != 1.5 {
		t.Fatalf("resample midpoint %v", got[3])
	}
	one := resample([]float64{5}, 3)
	if one[0] != 5 || one[1] != 5 || one[2] != 5 {
		t.Fatalf("constant resample %v", one)
	}
}

func TestASCIIRendering(t *testing.T) {
	tr := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 13}, gpusim.Options{})
	art := Render(tr, 16).ASCII()
	lines := 0
	for _, c := range art {
		if c == '\n' {
			lines++
		}
	}
	if lines != 16 {
		t.Fatalf("ASCII art has %d lines, want 16", lines)
	}
	// Must contain both background and lit glyphs.
	hasSpace, hasInk := false, false
	for _, c := range art {
		if c == ' ' {
			hasSpace = true
		} else if c != '\n' {
			hasInk = true
		}
	}
	if !hasSpace || !hasInk {
		t.Fatal("ASCII art lacks contrast")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := trace("tiny", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 14}, gpusim.Options{})
	var buf strings.Builder
	if err := WriteCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Execs)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(tr.Execs)+1)
	}
	if !strings.HasPrefix(lines[0], "index,name,start_us") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Fatalf("bad row %q", lines[1])
	}
}

func TestWritePNG(t *testing.T) {
	tr := trace("tiny", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 15}, gpusim.Options{})
	im := Render(tr, 32)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := decoded.Bounds()
	if b.Dx() != 32 || b.Dy() != 32 {
		t.Fatalf("decoded PNG is %dx%d", b.Dx(), b.Dy())
	}
	// Peak pixel survives the 8-bit quantization.
	found := false
	for y := 0; y < 32 && !found; y++ {
		for x := 0; x < 32; x++ {
			r, _, _, _ := decoded.At(x, y).RGBA()
			if r >= 0xfafa {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("PNG lost the normalized peak pixel")
	}
}

// renderReference is the pre-optimization two-pass Render: accumulate,
// then scan the whole image for the max, then normalize. The single-pass
// version must match it bit for bit.
func renderReference(t *gpusim.Trace, size int) *Image {
	im := NewImage(size)
	if len(t.Execs) == 0 {
		return im
	}
	xspan := t.Duration()
	if xspan <= 0 {
		return im
	}
	for _, e := range t.Execs {
		x := int(e.Start / xspan * float64(size))
		if x >= size {
			x = size - 1
		}
		frac := e.Duration() / YSpanUS
		if frac > 1 {
			frac = 1
		}
		y := size - 1 - int(frac*float64(size-1))
		im.Pix[y*size+x] += 1
	}
	var max float32
	for _, v := range im.Pix {
		if v > max {
			max = v
		}
	}
	if max > 0 {
		inv := 1 / max
		for i := range im.Pix {
			im.Pix[i] *= inv
		}
	}
	return im
}

func TestRenderMatchesTwoPassReference(t *testing.T) {
	for _, name := range []string{"base", "large"} {
		for _, size := range []int{16, 64, 333} {
			tr := trace(name, gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}, gpusim.Options{})
			got := Render(tr, size)
			want := renderReference(tr, size)
			for i := range want.Pix {
				if got.Pix[i] != want.Pix[i] {
					t.Fatalf("%s size %d: pixel %d = %v, reference %v", name, size, i, got.Pix[i], want.Pix[i])
				}
			}
		}
	}
	// Sparse trace where every pixel count is 1: exercises the skipped
	// normalization pass (scaling by 1/1 must be a no-op either way).
	sparse := &gpusim.Trace{Execs: []gpusim.Exec{
		{Name: "k0", Start: 0, End: 5},
		{Name: "k1", Start: 100, End: 120},
		{Name: "k2", Start: 300, End: 301},
	}}
	got := Render(sparse, 32)
	want := renderReference(sparse, 32)
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("sparse: pixel %d = %v, reference %v", i, got.Pix[i], want.Pix[i])
		}
	}
}

// StripMemcpy must slide the exec-index section spans left by the number
// of memcpys removed before each boundary, so that each span still names
// the same kernels — and must not alias the input's Sections slice.
func TestStripMemcpyReindexesSections(t *testing.T) {
	tr := trace("base", gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 1}, gpusim.Options{})
	if len(tr.Sections) == 0 {
		t.Fatal("simulated trace carries no sections")
	}
	// Record what each span actually covers before stripping.
	want := make([][]gpusim.Exec, len(tr.Sections))
	for i, s := range tr.Sections {
		want[i] = append([]gpusim.Exec(nil), tr.Execs[s.Start:s.End]...)
	}
	out := StripMemcpy(tr)
	if len(out.Execs) >= len(tr.Execs) {
		t.Fatal("no memcpy events were stripped; test needs them")
	}
	if len(out.Sections) != len(tr.Sections) {
		t.Fatalf("stripped trace has %d sections, want %d", len(out.Sections), len(tr.Sections))
	}
	for i, s := range out.Sections {
		if s.Start < 0 || s.End > len(out.Execs) || s.Start > s.End {
			t.Fatalf("section %d out of range after strip: %+v (execs %d)", i, s, len(out.Execs))
		}
		got := out.Execs[s.Start:s.End]
		if len(got) != len(want[i]) {
			t.Fatalf("section %d covers %d execs after strip, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j].Name != want[i][j].Name {
				t.Fatalf("section %d exec %d is %q after strip, want %q", i, j, got[j].Name, want[i][j].Name)
			}
		}
	}
	// Fresh slice, not an aliased view of the input.
	out.Sections[0].Start = -42
	if tr.Sections[0].Start == -42 {
		t.Fatal("StripMemcpy aliases the input's Sections slice")
	}
}

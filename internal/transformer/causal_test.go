package transformer

import (
	"bytes"
	"math"
	"testing"

	"decepticon/internal/tensor"
)

func causalConfig() Config {
	cfg := testConfig()
	cfg.Causal = true
	return cfg
}

func TestCausalMaskBlocksFuture(t *testing.T) {
	// The output of a decoder block at position i must not depend on
	// tokens at positions > i.
	m := New(causalConfig(), 21)
	a := []int{1, 2, 3, 4, 5}
	b := []int{1, 2, 3, 4, 9} // only the last token differs

	xa := m.embed(a)
	outA := m.Blocks[0].forward(xa, m.Heads, m.HeadDim(), true).Clone()
	xb := m.embed(b)
	outB := m.Blocks[0].forward(xb, m.Heads, m.HeadDim(), true)

	for i := 0; i < 4; i++ {
		for j := 0; j < m.Hidden; j++ {
			if outA.At(i, j) != outB.At(i, j) {
				t.Fatalf("position %d depends on a future token (dim %d)", i, j)
			}
		}
	}
	// The last position must differ (it sees its own token).
	same := true
	for j := 0; j < m.Hidden; j++ {
		if outA.At(4, j) != outB.At(4, j) {
			same = false
		}
	}
	if same {
		t.Fatal("last position ignored its own token")
	}
}

func TestEncoderSeesFuture(t *testing.T) {
	// Sanity check of the test above: an encoder block DOES let early
	// positions see later tokens.
	m := New(testConfig(), 21)
	a := []int{1, 2, 3, 4, 5}
	b := []int{1, 2, 3, 4, 9}
	outA := m.Blocks[0].forward(m.embed(a), m.Heads, m.HeadDim(), false).Clone()
	outB := m.Blocks[0].forward(m.embed(b), m.Heads, m.HeadDim(), false)
	diff := false
	for j := 0; j < m.Hidden; j++ {
		if outA.At(0, j) != outB.At(0, j) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("encoder position 0 did not see the future token")
	}
}

func TestCausalAttentionRowsNormalize(t *testing.T) {
	m := New(causalConfig(), 22)
	m.Logits([]int{1, 2, 3, 4})
	for h, probs := range m.Blocks[0].cache.probs {
		if probs == nil {
			continue
		}
		for i := 0; i < probs.Rows; i++ {
			var sum float32
			for j, v := range probs.Row(i) {
				sum += v
				if j > i && v > 1e-6 {
					t.Fatalf("head %d: attention weight %v leaks to future position (%d,%d)", h, v, i, j)
				}
			}
			if math.Abs(float64(sum-1)) > 1e-5 {
				t.Fatalf("head %d row %d sums to %v", h, i, sum)
			}
		}
	}
}

// TestCausalGradientsMatchNumeric re-runs the full gradient check with the
// causal mask active.
func TestCausalGradientsMatchNumeric(t *testing.T) {
	m := New(causalConfig(), 23)
	tokens := []int{1, 7, 3, 9, 0}
	label := 2
	loss := func() float64 {
		logits := m.Logits(tokens)
		probs := tensor.SoftmaxRows(tensor.FromSlice(1, len(logits), logits)).Row(0)
		return -math.Log(float64(probs[label]))
	}
	m.ZeroGrads()
	m.LossAndBackward(tokens, label)
	const h = 1e-2
	checked := 0
	for _, p := range m.Params() {
		stride := len(p.Value.Data)/3 + 1
		for j := 0; j < len(p.Value.Data); j += stride {
			if p.Name == "tok_emb" {
				j = tokens[0]*m.Hidden + j%m.Hidden
			}
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + h
			up := loss()
			p.Value.Data[j] = orig - h
			down := loss()
			p.Value.Data[j] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[j])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, j, analytic, numeric)
			}
			checked++
			if p.Name == "tok_emb" {
				break
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestCausalModelTrains(t *testing.T) {
	m := New(causalConfig(), 24)
	var examples []Example
	for i := 0; i < 60; i++ {
		tokens := []int{0, 1 + i%3, 5, 6}
		examples = append(examples, Example{Tokens: tokens, Label: (i % 3) % m.Labels})
	}
	m.Train(examples, TrainConfig{Epochs: 10, BatchSize: 8, LR: 3e-3, Seed: 1})
	if acc := m.Evaluate(examples); acc < 0.9 {
		t.Fatalf("causal model training accuracy %v", acc)
	}
}

func TestCausalSerializationRoundTrip(t *testing.T) {
	m := New(causalConfig(), 25)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Causal {
		t.Fatal("Causal flag lost in serialization")
	}
	tokens := []int{1, 2, 3}
	a, b := m.Logits(tokens), got.Logits(tokens)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored causal model differs")
		}
	}
}

// Package transformer implements a BERT-style encoder transformer with
// full hand-written backpropagation. It is the victim-model substrate of
// the Decepticon reproduction: the model zoo pre-trains and fine-tunes
// instances of this model, the selective weight extraction clones their
// float32 weights bit-by-bit, and the adversarial attack differentiates
// through them.
//
// The architecture mirrors the paper's Fig 2: token+position embeddings,
// a stack of identical encoder blocks (multi-head self-attention + GELU
// feed-forward, post-layer-norm), and a task-specific classification head
// attached to the first ([CLS]) token. Dimensions are scaled down from
// BERT's (see DESIGN.md §2) but every structural knob the attack exploits
// — layer count, hidden size, head count, the task-dependent last layer —
// is faithful.
package transformer

import "fmt"

// Config describes a transformer architecture.
type Config struct {
	Name   string // architecture name, e.g. "bert-base"
	Layers int    // number of encoder blocks
	Hidden int    // hidden (model) dimension; must be divisible by Heads
	Heads  int    // attention heads per block
	FFN    int    // feed-forward inner dimension
	Vocab  int    // vocabulary size
	MaxSeq int    // maximum sequence length
	Labels int    // classification head width (task-dependent last layer)
	// Causal selects decoder-style masked self-attention (GPT-2, BART
	// decoder): position i attends only to positions ≤ i. "Decoders are
	// similar to encoders, except the masked self-attention" (paper §2.2).
	Causal bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("transformer: %s: Layers must be positive", c.Name)
	case c.Hidden <= 0 || c.Heads <= 0 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("transformer: %s: Hidden (%d) must be a positive multiple of Heads (%d)", c.Name, c.Hidden, c.Heads)
	case c.FFN <= 0:
		return fmt.Errorf("transformer: %s: FFN must be positive", c.Name)
	case c.Vocab <= 0:
		return fmt.Errorf("transformer: %s: Vocab must be positive", c.Name)
	case c.MaxSeq <= 0:
		return fmt.Errorf("transformer: %s: MaxSeq must be positive", c.Name)
	case c.Labels <= 0:
		return fmt.Errorf("transformer: %s: Labels must be positive", c.Name)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// WithLabels returns a copy of c with a different classification width —
// used when a fine-tuning task replaces the pre-trained model's head.
func (c Config) WithLabels(labels int) Config {
	c.Labels = labels
	return c
}

// Family enumerates the scaled-down analogs of the paper's architecture
// sizes ("tiny, mini, distill, medium, base, large"). The relative ordering
// of layer counts and hidden sizes matches the BERT family: e.g. the base
// analog has 12 layers at hidden 768 in the paper and 6 layers at hidden 48
// here; the large analog doubles the layer count and widens the hidden
// dimension, exactly as BERT-large does.
func Family() map[string]Config {
	mk := func(name string, layers, hidden, heads int) Config {
		return Config{
			Name:   name,
			Layers: layers,
			Hidden: hidden,
			Heads:  heads,
			FFN:    hidden * 2,
			Vocab:  96,
			MaxSeq: 16,
			Labels: 2,
		}
	}
	return map[string]Config{
		"tiny":   mk("tiny", 2, 16, 2),
		"mini":   mk("mini", 4, 16, 2),
		"small":  mk("small", 4, 24, 4),
		"medium": mk("medium", 6, 24, 4),
		"base":   mk("base", 6, 32, 4),
		"large":  mk("large", 12, 40, 8),
	}
}

package transformer

import (
	"fmt"
	"sync"
)

// Handle owns a model's tensors on behalf of a population member. Two
// flavors exist:
//
//   - a resident handle wraps a model that lives in memory for the
//     handle's whole lifetime (a freshly trained model, or a population
//     loaded from the monolithic cache). Get returns it, Release is a
//     no-op — resident tensors are never dropped under a caller that may
//     have mutated them (the pruning experiments edit weights in place).
//   - a lazy handle knows how to load the tensors (from a zoo store
//     object file) but does not hold them until first use. Get loads on
//     demand and caches; Release drops the cached model so a campaign
//     over a large population keeps only its working set in memory. A
//     released handle reloads on the next Get — load → release → load
//     yields byte-identical tensors because store objects are immutable.
//
// Handles are safe for concurrent use: Get may race with Get or Release
// from other goroutines (a campaign's workers share the zoo's backbones).
type Handle struct {
	mu       sync.Mutex
	model    *Model
	load     func() (*Model, error)
	resident bool
}

// Resident wraps an in-memory model; Get returns it, Release is a no-op.
func Resident(m *Model) *Handle {
	return &Handle{model: m, resident: true}
}

// Lazy returns a handle that loads the model through load on first Get
// and can drop it again with Release. load must be pure: every call must
// yield byte-identical tensors (the store's determinism contract).
func Lazy(load func() (*Model, error)) *Handle {
	return &Handle{load: load}
}

// Get returns the model, loading it first if the handle is lazy and
// currently empty. A load failure panics: handles sit under accessors on
// hot paths that predate laziness (victim.Model().Predict in the middle
// of an extraction), where an error return is not plumbable — and a
// store object that validated at open time disappearing mid-run is
// infrastructure failure, not input.
func (h *Handle) Get() *Model {
	if h == nil {
		panic("transformer: Get on nil model handle")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.model == nil {
		if h.load == nil {
			panic("transformer: model handle holds no model and no loader")
		}
		m, err := h.load()
		if err != nil {
			panic(fmt.Sprintf("transformer: lazy model load: %v", err))
		}
		h.model = m
	}
	return h.model
}

// Release drops a lazy handle's cached tensors; the next Get reloads
// them. Resident handles ignore it (their tensors may carry in-place
// edits that a reload would silently discard).
func (h *Handle) Release() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.resident {
		h.model = nil
	}
	h.mu.Unlock()
}

// Loaded reports whether the tensors are currently in memory.
func (h *Handle) Loaded() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.model != nil
}

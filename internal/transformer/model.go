package transformer

import (
	"fmt"
	"math"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// P is a trainable parameter tensor paired with its gradient accumulator.
type P struct {
	V *tensor.Matrix // value
	G *tensor.Matrix // gradient (same shape)
}

// Init describes a weight initialization distribution. The default is
// BERT's dense Gaussian. TrainedInit draws a large fraction of weights
// from a near-zero component, mimicking the heavy-tailed, magnitude-
// prunable weight distributions of genuinely pre-trained transformers —
// the property behind the paper's Fig 16 result that ~90% of weights can
// be excluded from side-channel checking (see DESIGN.md §4).
type Init struct {
	Std        float64 // std of the dense component
	SparseFrac float64 // fraction of weights drawn from the near-zero component
	SparseStd  float64 // std of the near-zero component
}

// DefaultInit is BERT's initializer: N(0, 0.02).
var DefaultInit = Init{Std: 0.02}

// TrainedInit mimics a converged pre-trained transformer's weight
// distribution: most weights near zero, a heavy tail of larger ones.
var TrainedInit = Init{Std: 0.05, SparseFrac: 0.72, SparseStd: 0.0004}

func (in Init) sample(r *rng.RNG) float32 {
	if in.SparseFrac > 0 && r.Float64() < in.SparseFrac {
		return r.Normal(0, in.SparseStd)
	}
	return r.Normal(0, in.Std)
}

func newPInit(rows, cols int, in Init, r *rng.RNG) P {
	v := tensor.New(rows, cols)
	if r != nil && in.Std != 0 {
		for i := range v.Data {
			v.Data[i] = in.sample(r)
		}
	}
	return P{V: v, G: tensor.New(rows, cols)}
}

func onesP(rows, cols int) P {
	p := P{V: tensor.New(rows, cols), G: tensor.New(rows, cols)}
	for i := range p.V.Data {
		p.V.Data[i] = 1
	}
	return p
}

// Block is one encoder layer: multi-head self-attention followed by a GELU
// feed-forward network, each with a residual connection and post-layer-norm.
type Block struct {
	Wq, Wk, Wv, Wo P // Hidden×Hidden
	Bq, Bk, Bv, Bo P // 1×Hidden
	LN1G, LN1B     P // 1×Hidden
	W1, B1         P // Hidden×FFN, 1×FFN
	W2, B2         P // FFN×Hidden, 1×Hidden
	LN2G, LN2B     P // 1×Hidden

	// HeadPruned marks attention heads removed by the head-pruning
	// optimization (paper §8); pruned heads contribute nothing to the
	// attention output.
	HeadPruned []bool

	cache blockCache
}

type blockCache struct {
	x       *tensor.Matrix   // block input S×H
	q, k, v *tensor.Matrix   // S×H
	probs   []*tensor.Matrix // per head S×S attention weights
	ctx     *tensor.Matrix   // S×H concatenated head outputs
	ln1     lnCache
	ln1Out  *tensor.Matrix
	h1      *tensor.Matrix // pre-GELU S×FFN
	act     *tensor.Matrix // post-GELU S×FFN
	ln2     lnCache
}

// Model is a full transformer with a classification head.
type Model struct {
	Config
	TokEmb P // Vocab×Hidden
	PosEmb P // MaxSeq×Hidden
	Blocks []*Block
	HeadW  P // Hidden×Labels: the task-dependent last layer
	HeadB  P // 1×Labels

	embCache struct {
		tokens []int
		x      *tensor.Matrix
	}
}

// New returns a model initialized with DefaultInit (BERT's N(0, 0.02)).
func New(cfg Config, seed uint64) *Model {
	return NewWithInit(cfg, seed, DefaultInit)
}

// NewWithInit returns a randomly initialized model with the given weight
// distribution.
func NewWithInit(cfg Config, seed uint64, init Init) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed)
	none := Init{}
	// Embedding tables are dense regardless of the block-weight
	// distribution: real transformer embeddings are not magnitude-sparse,
	// and distinct tokens must be distinguishable from the start.
	embInit := Init{Std: init.Std}
	m := &Model{
		Config: cfg,
		TokEmb: newPInit(cfg.Vocab, cfg.Hidden, embInit, r.Derive("tok")),
		PosEmb: newPInit(cfg.MaxSeq, cfg.Hidden, embInit, r.Derive("pos")),
		HeadW:  newPInit(cfg.Hidden, cfg.Labels, init, r.Derive("head")),
		HeadB:  newPInit(1, cfg.Labels, none, nil),
	}
	for l := 0; l < cfg.Layers; l++ {
		br := r.Derive(fmt.Sprintf("block%d", l))
		b := &Block{
			Wq:         newPInit(cfg.Hidden, cfg.Hidden, init, br.Derive("wq")),
			Wk:         newPInit(cfg.Hidden, cfg.Hidden, init, br.Derive("wk")),
			Wv:         newPInit(cfg.Hidden, cfg.Hidden, init, br.Derive("wv")),
			Wo:         newPInit(cfg.Hidden, cfg.Hidden, init, br.Derive("wo")),
			Bq:         newPInit(1, cfg.Hidden, none, nil),
			Bk:         newPInit(1, cfg.Hidden, none, nil),
			Bv:         newPInit(1, cfg.Hidden, none, nil),
			Bo:         newPInit(1, cfg.Hidden, none, nil),
			LN1G:       onesP(1, cfg.Hidden),
			LN1B:       newPInit(1, cfg.Hidden, none, nil),
			W1:         newPInit(cfg.Hidden, cfg.FFN, init, br.Derive("w1")),
			B1:         newPInit(1, cfg.FFN, none, nil),
			W2:         newPInit(cfg.FFN, cfg.Hidden, init, br.Derive("w2")),
			B2:         newPInit(1, cfg.Hidden, none, nil),
			LN2G:       onesP(1, cfg.Hidden),
			LN2B:       newPInit(1, cfg.Hidden, none, nil),
			HeadPruned: make([]bool, cfg.Heads),
		}
		m.Blocks = append(m.Blocks, b)
	}
	return m
}

// ---- layer norm ----

type lnCache struct {
	xhat   *tensor.Matrix
	invStd []float32
}

const lnEps = 1e-5

func layerNormForward(x *tensor.Matrix, g, b []float32) (*tensor.Matrix, lnCache) {
	out := tensor.New(x.Rows, x.Cols)
	cache := lnCache{xhat: tensor.New(x.Rows, x.Cols), invStd: make([]float32, x.Rows)}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(len(row))
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float32(len(row))
		inv := 1 / float32(math.Sqrt(float64(variance)+lnEps))
		cache.invStd[i] = inv
		xh := cache.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			orow[j] = xh[j]*g[j] + b[j]
		}
	}
	return out, cache
}

// layerNormBackward consumes dOut and returns dX, accumulating dG and dB.
func layerNormBackward(dOut *tensor.Matrix, cache lnCache, g, dG, dB []float32) *tensor.Matrix {
	dx := tensor.New(dOut.Rows, dOut.Cols)
	n := float32(dOut.Cols)
	for i := 0; i < dOut.Rows; i++ {
		dy := dOut.Row(i)
		xh := cache.xhat.Row(i)
		inv := cache.invStd[i]
		var sumDxhat, sumDxhatXhat float32
		dxhat := make([]float32, len(dy))
		for j := range dy {
			dG[j] += dy[j] * xh[j]
			dB[j] += dy[j]
			dxhat[j] = dy[j] * g[j]
			sumDxhat += dxhat[j]
			sumDxhatXhat += dxhat[j] * xh[j]
		}
		drow := dx.Row(i)
		for j := range dy {
			drow[j] = inv * (dxhat[j] - sumDxhat/n - xh[j]*sumDxhatXhat/n)
		}
	}
	return dx
}

// ---- block forward / backward ----

// headSlice copies head h's columns of m (S×Hidden) into an S×headDim matrix.
func headSlice(m *tensor.Matrix, h, headDim int) *tensor.Matrix {
	out := tensor.New(m.Rows, headDim)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*headDim:(h+1)*headDim])
	}
	return out
}

// addHeadSlice adds src (S×headDim) into head h's columns of dst.
func addHeadSlice(dst, src *tensor.Matrix, h, headDim int) {
	for i := 0; i < dst.Rows; i++ {
		d := dst.Row(i)[h*headDim : (h+1)*headDim]
		s := src.Row(i)
		for j := range d {
			d[j] += s[j]
		}
	}
}

// causalMaskValue is added to masked (future) attention scores; after the
// softmax those positions carry effectively zero weight.
const causalMaskValue = -1e9

func (b *Block) forward(x *tensor.Matrix, heads, headDim int, causal bool) *tensor.Matrix {
	c := &b.cache
	c.x = x
	c.q = tensor.MatMul(x, b.Wq.V)
	c.q.AddRowVector(b.Bq.V.Data)
	c.k = tensor.MatMul(x, b.Wk.V)
	c.k.AddRowVector(b.Bk.V.Data)
	c.v = tensor.MatMul(x, b.Wv.V)
	c.v.AddRowVector(b.Bv.V.Data)

	scale := float32(1 / math.Sqrt(float64(headDim)))
	c.probs = make([]*tensor.Matrix, heads)
	c.ctx = tensor.New(x.Rows, heads*headDim)
	for h := 0; h < heads; h++ {
		if b.HeadPruned[h] {
			continue
		}
		qh := headSlice(c.q, h, headDim)
		kh := headSlice(c.k, h, headDim)
		vh := headSlice(c.v, h, headDim)
		scores := tensor.MatMulNT(qh, kh).Scale(scale)
		if causal {
			for i := 0; i < scores.Rows; i++ {
				row := scores.Row(i)
				for j := i + 1; j < len(row); j++ {
					row[j] += causalMaskValue
				}
			}
		}
		probs := tensor.SoftmaxRows(scores)
		c.probs[h] = probs
		ctxH := tensor.MatMul(probs, vh)
		addHeadSlice(c.ctx, ctxH, h, headDim)
	}

	attnOut := tensor.MatMul(c.ctx, b.Wo.V)
	attnOut.AddRowVector(b.Bo.V.Data)
	res1 := tensor.Add(x, attnOut)
	var ln1Out *tensor.Matrix
	ln1Out, c.ln1 = layerNormForward(res1, b.LN1G.V.Data, b.LN1B.V.Data)
	c.ln1Out = ln1Out

	c.h1 = tensor.MatMul(ln1Out, b.W1.V)
	c.h1.AddRowVector(b.B1.V.Data)
	c.act = tensor.GELU(c.h1)
	ffnOut := tensor.MatMul(c.act, b.W2.V)
	ffnOut.AddRowVector(b.B2.V.Data)
	res2 := tensor.Add(ln1Out, ffnOut)
	out, ln2 := layerNormForward(res2, b.LN2G.V.Data, b.LN2B.V.Data)
	c.ln2 = ln2
	return out
}

func accumBias(p P, grad *tensor.Matrix) {
	s := grad.SumRows()
	for i := range s {
		p.G.Data[i] += s[i]
	}
}

func (b *Block) backward(dOut *tensor.Matrix, heads, headDim int) *tensor.Matrix {
	c := &b.cache
	// LN2 -> residual(ln1Out, ffnOut)
	dRes2 := layerNormBackward(dOut, c.ln2, b.LN2G.V.Data, b.LN2G.G.Data, b.LN2B.G.Data)
	// ffnOut = act W2 + b2
	accumBias(b.B2, dRes2)
	tensor.AddInPlace(b.W2.G, tensor.MatMulTN(c.act, dRes2))
	dAct := tensor.MatMulNT(dRes2, b.W2.V)
	dH1 := tensor.Hadamard(dAct, tensor.GELUGrad(c.h1))
	accumBias(b.B1, dH1)
	tensor.AddInPlace(b.W1.G, tensor.MatMulTN(c.ln1Out, dH1))
	dLn1 := tensor.MatMulNT(dH1, b.W1.V)
	tensor.AddInPlace(dLn1, dRes2) // residual path

	dRes1 := layerNormBackward(dLn1, c.ln1, b.LN1G.V.Data, b.LN1G.G.Data, b.LN1B.G.Data)
	// attnOut = ctx Wo + bo
	accumBias(b.Bo, dRes1)
	tensor.AddInPlace(b.Wo.G, tensor.MatMulTN(c.ctx, dRes1))
	dCtx := tensor.MatMulNT(dRes1, b.Wo.V)

	scale := float32(1 / math.Sqrt(float64(headDim)))
	dQ := tensor.New(c.q.Rows, c.q.Cols)
	dK := tensor.New(c.k.Rows, c.k.Cols)
	dV := tensor.New(c.v.Rows, c.v.Cols)
	for h := 0; h < heads; h++ {
		if b.HeadPruned[h] {
			continue
		}
		probs := c.probs[h]
		kh := headSlice(c.k, h, headDim)
		vh := headSlice(c.v, h, headDim)
		qh := headSlice(c.q, h, headDim)
		dCtxH := headSlice(dCtx, h, headDim)

		dProbs := tensor.MatMulNT(dCtxH, vh)
		dVh := tensor.MatMulTN(probs, dCtxH)
		// softmax backward per row: dS = P ⊙ (dP - rowSum(dP⊙P))
		dScores := tensor.New(probs.Rows, probs.Cols)
		for i := 0; i < probs.Rows; i++ {
			p := probs.Row(i)
			dp := dProbs.Row(i)
			var dot float32
			for j := range p {
				dot += dp[j] * p[j]
			}
			ds := dScores.Row(i)
			for j := range p {
				ds[j] = p[j] * (dp[j] - dot)
			}
		}
		dScores.Scale(scale)
		dQh := tensor.MatMul(dScores, kh)
		dKh := tensor.MatMulTN(dScores, qh)
		addHeadSlice(dQ, dQh, h, headDim)
		addHeadSlice(dK, dKh, h, headDim)
		addHeadSlice(dV, dVh, h, headDim)
	}

	accumBias(b.Bq, dQ)
	accumBias(b.Bk, dK)
	accumBias(b.Bv, dV)
	tensor.AddInPlace(b.Wq.G, tensor.MatMulTN(c.x, dQ))
	tensor.AddInPlace(b.Wk.G, tensor.MatMulTN(c.x, dK))
	tensor.AddInPlace(b.Wv.G, tensor.MatMulTN(c.x, dV))

	dx := tensor.MatMulNT(dQ, b.Wq.V)
	tensor.AddInPlace(dx, tensor.MatMulNT(dK, b.Wk.V))
	tensor.AddInPlace(dx, tensor.MatMulNT(dV, b.Wv.V))
	tensor.AddInPlace(dx, dRes1) // residual path
	return dx
}

// ---- model forward / backward ----

// embed returns the token+position embedding matrix for tokens.
func (m *Model) embed(tokens []int) *tensor.Matrix {
	if len(tokens) == 0 || len(tokens) > m.MaxSeq {
		panic(fmt.Sprintf("transformer: sequence length %d out of (0,%d]", len(tokens), m.MaxSeq))
	}
	x := tensor.New(len(tokens), m.Hidden)
	for i, tok := range tokens {
		if tok < 0 || tok >= m.Vocab {
			panic(fmt.Sprintf("transformer: token %d out of vocab %d", tok, m.Vocab))
		}
		row := x.Row(i)
		te := m.TokEmb.V.Row(tok)
		pe := m.PosEmb.V.Row(i)
		for j := range row {
			row[j] = te[j] + pe[j]
		}
	}
	return x
}

// pool mean-pools the final block output over sequence positions — the
// classifier's sentence representation.
func (m *Model) pool(acts *tensor.Matrix) []float32 {
	pooled := make([]float32, m.Hidden)
	inv := 1 / float32(acts.Rows)
	for i := 0; i < acts.Rows; i++ {
		row := acts.Row(i)
		for j := range pooled {
			pooled[j] += row[j] * inv
		}
	}
	return pooled
}

func (m *Model) headLogits(pooled []float32) []float32 {
	logits := make([]float32, m.Labels)
	for j := 0; j < m.Labels; j++ {
		s := m.HeadB.V.Data[j]
		for i, v := range pooled {
			s += v * m.HeadW.V.At(i, j)
		}
		logits[j] = s
	}
	return logits
}

// Logits runs a forward pass and returns the classification logits.
func (m *Model) Logits(tokens []int) []float32 {
	x := m.embed(tokens)
	m.embCache.tokens = tokens
	m.embCache.x = x
	for _, b := range m.Blocks {
		x = b.forward(x, m.Heads, m.HeadDim(), m.Causal)
	}
	return m.headLogits(m.pool(x))
}

// Predict returns the argmax class for tokens.
func (m *Model) Predict(tokens []int) int {
	logits := m.Logits(tokens)
	best := 0
	for i := range logits {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

// Probs returns the softmax class distribution for tokens.
func (m *Model) Probs(tokens []int) []float32 {
	logits := m.Logits(tokens)
	mx := tensor.FromSlice(1, len(logits), logits)
	return tensor.SoftmaxRows(mx).Row(0)
}

// LossAndBackward computes the cross-entropy loss of tokens against label,
// accumulates parameter gradients, and returns the loss together with the
// gradient of the loss with respect to the embedding output (used by the
// adversarial attack to rank token substitutions).
func (m *Model) LossAndBackward(tokens []int, label int) (float64, *tensor.Matrix) {
	if label < 0 || label >= m.Labels {
		panic(fmt.Sprintf("transformer: label %d out of range [0,%d)", label, m.Labels))
	}
	// Forward (re-runs embed + blocks so caches are fresh).
	x := m.embed(tokens)
	m.embCache.tokens = tokens
	m.embCache.x = x
	acts := x
	for _, b := range m.Blocks {
		acts = b.forward(acts, m.Heads, m.HeadDim(), m.Causal)
	}
	pooled := m.pool(acts)
	logits := m.headLogits(pooled)
	probs := tensor.SoftmaxRows(tensor.FromSlice(1, len(logits), logits)).Row(0)
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(float64(p))

	// Head backward.
	dLogits := make([]float32, m.Labels)
	copy(dLogits, probs)
	dLogits[label] -= 1
	for j := 0; j < m.Labels; j++ {
		m.HeadB.G.Data[j] += dLogits[j]
		for i := 0; i < m.Hidden; i++ {
			m.HeadW.G.Data[i*m.Labels+j] += pooled[i] * dLogits[j]
		}
	}
	// Mean pooling distributes the pooled gradient evenly over positions.
	dPooled := make([]float32, m.Hidden)
	for i := 0; i < m.Hidden; i++ {
		var s float32
		for j := 0; j < m.Labels; j++ {
			s += m.HeadW.V.At(i, j) * dLogits[j]
		}
		dPooled[i] = s / float32(acts.Rows)
	}
	dActs := tensor.New(acts.Rows, acts.Cols)
	for i := 0; i < acts.Rows; i++ {
		copy(dActs.Row(i), dPooled)
	}

	for l := len(m.Blocks) - 1; l >= 0; l-- {
		dActs = m.Blocks[l].backward(dActs, m.Heads, m.HeadDim())
	}

	// Embedding gradients.
	for i, tok := range tokens {
		g := dActs.Row(i)
		te := m.TokEmb.G.Row(tok)
		pe := m.PosEmb.G.Row(i)
		for j := range g {
			te[j] += g[j]
			pe[j] += g[j]
		}
	}
	return loss, dActs
}

package transformer

import (
	"math"
	"testing"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

func testConfig() Config {
	return Config{
		Name: "test", Layers: 2, Hidden: 8, Heads: 2, FFN: 16,
		Vocab: 12, MaxSeq: 6, Labels: 3,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Hidden = 9 // not divisible by 2 heads
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible hidden must be rejected")
	}
	bad = good
	bad.Layers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero layers must be rejected")
	}
}

func TestFamilyConfigsValid(t *testing.T) {
	fam := Family()
	if len(fam) < 5 {
		t.Fatalf("family too small: %d", len(fam))
	}
	for name, cfg := range fam {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("family config %s invalid: %v", name, err)
		}
	}
	if fam["large"].Layers <= fam["base"].Layers || fam["large"].Hidden <= fam["base"].Hidden {
		t.Fatal("large must be strictly bigger than base, as in the BERT family")
	}
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	m := New(testConfig(), 1)
	tokens := []int{1, 2, 3, 4}
	l1 := m.Logits(tokens)
	l2 := m.Logits(tokens)
	if len(l1) != 3 {
		t.Fatalf("logits len %d, want 3", len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("forward must be deterministic")
		}
	}
	m2 := New(testConfig(), 1)
	l3 := m2.Logits(tokens)
	for i := range l1 {
		if l1[i] != l3[i] {
			t.Fatal("same seed must give identical models")
		}
	}
	m3 := New(testConfig(), 2)
	same := true
	for i := range l1 {
		if l1[i] != m3.Logits(tokens)[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must give different models")
	}
}

func TestProbsSumToOne(t *testing.T) {
	m := New(testConfig(), 3)
	p := m.Probs([]int{0, 5, 11})
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("probs sum to %v", sum)
	}
}

// TestGradientsMatchNumeric verifies the full hand-written backward pass
// (attention, softmax, layer norm, GELU FFN, residuals, embeddings, head)
// against central finite differences.
func TestGradientsMatchNumeric(t *testing.T) {
	m := New(testConfig(), 4)
	tokens := []int{1, 7, 3, 9, 0}
	label := 2

	loss := func() float64 {
		logits := m.Logits(tokens)
		probs := tensor.SoftmaxRows(tensor.FromSlice(1, len(logits), logits)).Row(0)
		return -math.Log(float64(probs[label]))
	}

	m.ZeroGrads()
	m.LossAndBackward(tokens, label)

	const h = 1e-2
	checked := 0
	for _, p := range m.Params() {
		stride := len(p.Value.Data)/4 + 1
		for j := 0; j < len(p.Value.Data); j += stride {
			if p.Name == "tok_emb" {
				// Only rows of used tokens receive gradient; check one used row.
				j = tokens[0]*m.Hidden + j%m.Hidden
			}
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + h
			up := loss()
			p.Value.Data[j] = orig - h
			down := loss()
			p.Value.Data[j] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[j])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, j, analytic, numeric)
			}
			checked++
			if p.Name == "tok_emb" {
				break
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestEmbeddingGradientMatchesNumeric(t *testing.T) {
	m := New(testConfig(), 5)
	tokens := []int{2, 4, 6}
	label := 1
	m.ZeroGrads()
	_, dEmb := m.LossAndBackward(tokens, label)

	// Perturb one embedding-output coordinate by perturbing the token
	// embedding (position 1, dim 3) and compare.
	const h = 1e-2
	j := tokens[1]*m.Hidden + 3
	loss := func() float64 {
		logits := m.Logits(tokens)
		probs := tensor.SoftmaxRows(tensor.FromSlice(1, len(logits), logits)).Row(0)
		return -math.Log(float64(probs[label]))
	}
	orig := m.TokEmb.V.Data[j]
	m.TokEmb.V.Data[j] = orig + h
	up := loss()
	m.TokEmb.V.Data[j] = orig - h
	down := loss()
	m.TokEmb.V.Data[j] = orig
	numeric := (up - down) / (2 * h)
	analytic := float64(dEmb.At(1, 3))
	if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
		t.Fatalf("embedding grad: analytic %v vs numeric %v", analytic, numeric)
	}
}

func TestLayerNormForwardProperties(t *testing.T) {
	r := rng.New(6)
	x := tensor.Randn(4, 8, 3, r)
	g := make([]float32, 8)
	b := make([]float32, 8)
	for i := range g {
		g[i] = 1
	}
	out, _ := layerNormForward(x, g, b)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= 8
		var variance float64
		for _, v := range row {
			variance += (float64(v) - mean) * (float64(v) - mean)
		}
		variance /= 8
		if math.Abs(mean) > 1e-5 {
			t.Fatalf("row %d mean %v", i, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance %v", i, variance)
		}
	}
}

func TestTrainingLearnsSeparableTask(t *testing.T) {
	m := New(testConfig(), 7)
	// Task: label = 1 if token 3 appears, 2 if token 9 appears, else 0.
	r := rng.New(8)
	var examples []Example
	for i := 0; i < 120; i++ {
		tokens := make([]int, 5)
		for j := range tokens {
			tokens[j] = r.Intn(12)
			if tokens[j] == 3 || tokens[j] == 9 {
				tokens[j] = 0
			}
		}
		label := i % 3
		switch label {
		case 1:
			tokens[r.Intn(5)] = 3
		case 2:
			tokens[r.Intn(5)] = 9
		}
		examples = append(examples, Example{Tokens: tokens, Label: label})
	}
	m.Train(examples, TrainConfig{Epochs: 15, BatchSize: 8, LR: 3e-3, Seed: 1})
	if acc := m.Evaluate(examples); acc < 0.85 {
		t.Fatalf("training accuracy %v < 0.85", acc)
	}
}

func TestCloneIsIndependentAndIdentical(t *testing.T) {
	m := New(testConfig(), 9)
	c := m.Clone()
	tokens := []int{1, 2, 3}
	a, b := m.Logits(tokens), c.Logits(tokens)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone must produce identical outputs")
		}
	}
	c.TokEmb.V.Data[0] += 1
	if m.TokEmb.V.Data[0] == c.TokEmb.V.Data[0] {
		t.Fatal("clone must not share storage")
	}
}

func TestFineTuneFromKeepsBackboneClose(t *testing.T) {
	pre := New(testConfig(), 10)
	r := rng.New(11)
	var examples []Example
	for i := 0; i < 60; i++ {
		tokens := []int{r.Intn(12), r.Intn(12), r.Intn(12)}
		examples = append(examples, Example{Tokens: tokens, Label: i % 2})
	}
	ft := FineTuneFrom(pre, 2, examples, TrainConfig{Epochs: 3, LR: 1e-4, WeightDecay: 0.01, Seed: 2}, 99)
	gaps := WeightGaps(pre, ft)
	var maxGap float64
	for _, g := range gaps {
		if math.Abs(g) > maxGap {
			maxGap = math.Abs(g)
		}
	}
	if maxGap > 0.1 {
		t.Fatalf("fine-tuning moved a backbone weight by %v — too far", maxGap)
	}
	// An unrelated pre-trained model must be far away.
	other := New(testConfig(), 999)
	otherGaps := WeightGaps(other, ft)
	var sumFT, sumOther float64
	for _, g := range gaps {
		sumFT += math.Abs(g)
	}
	for _, g := range otherGaps {
		sumOther += math.Abs(g)
	}
	if sumOther/float64(len(otherGaps)) < 5*sumFT/float64(len(gaps)) {
		t.Fatalf("unrelated model not clearly farther: own %v vs other %v",
			sumFT/float64(len(gaps)), sumOther/float64(len(otherGaps)))
	}
}

func TestLayerMeanAbsDiffShape(t *testing.T) {
	a := New(testConfig(), 12)
	b := New(testConfig(), 13)
	diffs := LayerMeanAbsDiff(a, b)
	if len(diffs) != a.Layers+1 {
		t.Fatalf("got %d per-layer diffs, want %d", len(diffs), a.Layers+1)
	}
	self := LayerMeanAbsDiff(a, a)
	for _, d := range self {
		if d != 0 {
			t.Fatal("self diff must be zero")
		}
	}
}

func TestSignKeepRate(t *testing.T) {
	a := New(testConfig(), 14)
	if got := SignKeepRate(a, a); got != 1 {
		t.Fatalf("self sign keep rate = %v", got)
	}
	b := a.Clone()
	// Flip the sign of every weight in one tensor.
	for i := range b.Blocks[0].Wq.V.Data {
		b.Blocks[0].Wq.V.Data[i] = -b.Blocks[0].Wq.V.Data[i]
	}
	if got := SignKeepRate(a, b); got >= 1 {
		t.Fatalf("sign keep rate after flip = %v", got)
	}
}

func TestHeadPruningChangesOutput(t *testing.T) {
	m := New(testConfig(), 15)
	tokens := []int{1, 2, 3, 4}
	before := m.Logits(tokens)
	m.PruneHeads(0, 1)
	after := m.Logits(tokens)
	if m.PrunedHeadCount() != 1 {
		t.Fatalf("pruned count = %d", m.PrunedHeadCount())
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("pruning a head must change the output")
	}
}

func TestHeadConfidenceRange(t *testing.T) {
	m := New(testConfig(), 16)
	probes := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	conf := m.HeadConfidence(probes)
	if len(conf) != m.Layers || len(conf[0]) != m.Heads {
		t.Fatalf("confidence shape %dx%d", len(conf), len(conf[0]))
	}
	for l := range conf {
		for h, c := range conf[l] {
			// Max attention weight over a row of a 4-token softmax is in
			// [1/4, 1].
			if c < 0.25-1e-6 || c > 1+1e-6 {
				t.Fatalf("confidence[%d][%d] = %v out of range", l, h, c)
			}
		}
	}
}

func TestParamsNaming(t *testing.T) {
	m := New(testConfig(), 17)
	ps := m.Params()
	// 2 embeddings + 16 per block * 2 blocks + 2 head tensors.
	if len(ps) != 2+16*2+2 {
		t.Fatalf("param tensor count = %d", len(ps))
	}
	last := ps[len(ps)-1]
	if !last.IsHead || last.Layer != m.Layers {
		t.Fatalf("last param should be head: %+v", last)
	}
	if m.HeadParamCount() != m.Hidden*m.Labels+m.Labels {
		t.Fatalf("head param count = %d", m.HeadParamCount())
	}
}

func TestTokenValidation(t *testing.T) {
	m := New(testConfig(), 18)
	for _, bad := range [][]int{{-1}, {12}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("tokens %v must panic", bad)
				}
			}()
			m.Logits(bad)
		}()
	}
}

func TestFreezeBackboneOnlyMovesHead(t *testing.T) {
	m := New(testConfig(), 19)
	before := m.Clone()
	examples := []Example{{Tokens: []int{1, 2}, Label: 0}, {Tokens: []int{3, 4}, Label: 1}}
	m.Train(examples, TrainConfig{Epochs: 2, LR: 1e-2, Seed: 3, FreezeBackbone: true})
	if gaps := WeightGaps(before, m); len(gaps) > 0 {
		for _, g := range gaps {
			if g != 0 {
				t.Fatal("backbone must not move when frozen")
			}
		}
	}
	if tensor.ApproxEqual(before.HeadW.V, m.HeadW.V, 0) {
		t.Fatal("head must move during head-only training")
	}
}

package transformer

import (
	"fmt"

	"decepticon/internal/tensor"
)

// NamedParam is a view of one parameter tensor with its provenance. Layer
// is -1 for embeddings, the block index for encoder parameters, and
// Config.Layers for the task-dependent last layer (the classification
// head), so "later layers first" extraction schedules can sort on it.
type NamedParam struct {
	Name   string
	Layer  int
	Value  *tensor.Matrix
	Grad   *tensor.Matrix
	IsHead bool // true for the task-dependent last layer
}

// Params returns every trainable tensor with stable names and layer
// indices. The order is deterministic: embeddings, blocks bottom-up, head.
func (m *Model) Params() []NamedParam {
	ps := []NamedParam{
		{Name: "tok_emb", Layer: -1, Value: m.TokEmb.V, Grad: m.TokEmb.G},
		{Name: "pos_emb", Layer: -1, Value: m.PosEmb.V, Grad: m.PosEmb.G},
	}
	for l, b := range m.Blocks {
		add := func(name string, p P) {
			ps = append(ps, NamedParam{
				Name:  fmt.Sprintf("block%d.%s", l, name),
				Layer: l, Value: p.V, Grad: p.G,
			})
		}
		add("wq", b.Wq)
		add("bq", b.Bq)
		add("wk", b.Wk)
		add("bk", b.Bk)
		add("wv", b.Wv)
		add("bv", b.Bv)
		add("wo", b.Wo)
		add("bo", b.Bo)
		add("ln1g", b.LN1G)
		add("ln1b", b.LN1B)
		add("w1", b.W1)
		add("b1", b.B1)
		add("w2", b.W2)
		add("b2", b.B2)
		add("ln2g", b.LN2G)
		add("ln2b", b.LN2B)
	}
	ps = append(ps,
		NamedParam{Name: "head_w", Layer: m.Layers, Value: m.HeadW.V, Grad: m.HeadW.G, IsHead: true},
		NamedParam{Name: "head_b", Layer: m.Layers, Value: m.HeadB.V, Grad: m.HeadB.G, IsHead: true},
	)
	return ps
}

// ParamCount returns the total number of scalar weights in the model.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}

// HeadParamCount returns the number of scalar weights in the task-specific
// last layer (Fig 16 right: its fraction of the total).
func (m *Model) HeadParamCount() int {
	return len(m.HeadW.V.Data) + len(m.HeadB.V.Data)
}

// Clone returns a deep copy of m (weights, head-pruning masks; gradients
// are zeroed).
func (m *Model) Clone() *Model {
	c := New(m.Config, 0)
	src := m.Params()
	dst := c.Params()
	for i := range src {
		dst[i].Value.CopyFrom(src[i].Value)
		dst[i].Grad.Zero()
	}
	for l, b := range m.Blocks {
		copy(c.Blocks[l].HeadPruned, b.HeadPruned)
	}
	return c
}

// CopyBlockFrom overwrites block l's weights with those of src's block l —
// the Table 1 "freeze first k layers to the pre-trained weights" operation.
func (m *Model) CopyBlockFrom(src *Model, l int) {
	if m.Hidden != src.Hidden || m.FFN != src.FFN {
		panic("transformer: CopyBlockFrom architecture mismatch")
	}
	d, s := m.Blocks[l], src.Blocks[l]
	pairs := [][2]P{
		{d.Wq, s.Wq}, {d.Bq, s.Bq}, {d.Wk, s.Wk}, {d.Bk, s.Bk},
		{d.Wv, s.Wv}, {d.Bv, s.Bv}, {d.Wo, s.Wo}, {d.Bo, s.Bo},
		{d.LN1G, s.LN1G}, {d.LN1B, s.LN1B},
		{d.W1, s.W1}, {d.B1, s.B1}, {d.W2, s.W2}, {d.B2, s.B2},
		{d.LN2G, s.LN2G}, {d.LN2B, s.LN2B},
	}
	for _, pr := range pairs {
		pr[0].V.CopyFrom(pr[1].V)
	}
}

// CopyEmbeddingsFrom overwrites m's embeddings with src's.
func (m *Model) CopyEmbeddingsFrom(src *Model) {
	m.TokEmb.V.CopyFrom(src.TokEmb.V)
	m.PosEmb.V.CopyFrom(src.PosEmb.V)
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// SharedParams returns the (a, b) pairs of equally-shaped non-head
// parameters of two models with the same backbone architecture — the
// population compared in the paper's weight-gap characterization
// (Figs 3-5). The head is excluded because fine-tuning replaces it.
func SharedParams(a, b *Model) [][2]NamedParam {
	pa, pb := a.Params(), b.Params()
	var out [][2]NamedParam
	for i := range pa {
		if i >= len(pb) {
			break
		}
		if pa[i].IsHead || pb[i].IsHead {
			continue
		}
		if pa[i].Value.Rows != pb[i].Value.Rows || pa[i].Value.Cols != pb[i].Value.Cols {
			continue
		}
		out = append(out, [2]NamedParam{pa[i], pb[i]})
	}
	return out
}

// WeightGaps returns the element-wise differences (b - a) across all
// shared non-head parameters, flattened. This feeds the Fig 3 histograms.
func WeightGaps(a, b *Model) []float64 {
	var out []float64
	for _, pr := range SharedParams(a, b) {
		va, vb := pr[0].Value, pr[1].Value
		for i := range va.Data {
			out = append(out, float64(vb.Data[i]-va.Data[i]))
		}
	}
	return out
}

// LayerMeanAbsDiff returns, per encoder block, the mean |Δw| between two
// same-architecture models, plus the head diff as the last element when
// both heads have equal shape (Fig 5's per-layer profile).
func LayerMeanAbsDiff(a, b *Model) []float64 {
	sums := make([]float64, a.Layers)
	counts := make([]float64, a.Layers)
	for _, pr := range SharedParams(a, b) {
		l := pr[0].Layer
		if l < 0 {
			continue
		}
		va, vb := pr[0].Value, pr[1].Value
		for i := range va.Data {
			d := float64(vb.Data[i] - va.Data[i])
			if d < 0 {
				d = -d
			}
			sums[l] += d
			counts[l]++
		}
	}
	out := make([]float64, 0, a.Layers+1)
	for l := range sums {
		if counts[l] > 0 {
			out = append(out, sums[l]/counts[l])
		} else {
			out = append(out, 0)
		}
	}
	if a.Labels == b.Labels {
		out = append(out, tensor.MeanAbsDiff(a.HeadW.V, b.HeadW.V))
	}
	return out
}

// SignKeepRate returns the fraction of shared weights whose sign is equal
// in both models — the paper's "an average of 99% weights keep their sign
// when fine-tuned" observation (§6.1.1).
func SignKeepRate(a, b *Model) float64 {
	var kept, total float64
	for _, pr := range SharedParams(a, b) {
		va, vb := pr[0].Value, pr[1].Value
		for i := range va.Data {
			total++
			if (va.Data[i] >= 0) == (vb.Data[i] >= 0) {
				kept++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return kept / total
}

package transformer

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// tensorExport is one named tensor in Params() order-independent form.
type tensorExport struct {
	Name string
	Data []float32
}

// modelExport is the gob wire format of a Model: the configuration, every
// named tensor, and the head-pruning masks. Gradients are not serialized.
//
// Save writes TensorList (sorted by name) so the byte stream is
// deterministic — gob encodes maps in random iteration order, which would
// make every saved artifact (zoo cache, store object) hash differently
// per run. Load still accepts the legacy Tensors map, so files written by
// older binaries keep loading: gob fills whichever field the stream
// carries and leaves the other empty.
type modelExport struct {
	Config     Config
	Tensors    map[string][]float32 // legacy streams only
	TensorList []tensorExport
	Pruned     [][]bool
}

// Save writes the model to w in gob format. The output is byte-
// deterministic: the same weights always serialize to the same stream.
func (m *Model) Save(w io.Writer) error {
	exp := modelExport{
		Config: m.Config,
		Pruned: make([][]bool, len(m.Blocks)),
	}
	for _, p := range m.Params() {
		exp.TensorList = append(exp.TensorList, tensorExport{Name: p.Name, Data: p.Value.Data})
	}
	sort.Slice(exp.TensorList, func(i, j int) bool {
		return exp.TensorList[i].Name < exp.TensorList[j].Name
	})
	for l, b := range m.Blocks {
		exp.Pruned[l] = append([]bool(nil), b.HeadPruned...)
	}
	if err := gob.NewEncoder(w).Encode(exp); err != nil {
		return fmt.Errorf("transformer: save: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save (either tensor layout).
func Load(r io.Reader) (*Model, error) {
	var exp modelExport
	if err := gob.NewDecoder(r).Decode(&exp); err != nil {
		return nil, fmt.Errorf("transformer: load: %w", err)
	}
	if err := exp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("transformer: load: %w", err)
	}
	tensors := exp.Tensors
	if len(exp.TensorList) > 0 {
		tensors = make(map[string][]float32, len(exp.TensorList))
		for _, te := range exp.TensorList {
			tensors[te.Name] = te.Data
		}
	}
	m := New(exp.Config, 0)
	for _, p := range m.Params() {
		data, ok := tensors[p.Name]
		if !ok {
			return nil, fmt.Errorf("transformer: load: missing tensor %q", p.Name)
		}
		if len(data) != len(p.Value.Data) {
			return nil, fmt.Errorf("transformer: load: tensor %q has %d values, want %d",
				p.Name, len(data), len(p.Value.Data))
		}
		copy(p.Value.Data, data)
	}
	if len(exp.Pruned) != len(m.Blocks) {
		return nil, fmt.Errorf("transformer: load: pruning masks for %d blocks, want %d",
			len(exp.Pruned), len(m.Blocks))
	}
	for l, mask := range exp.Pruned {
		if len(mask) != m.Heads {
			return nil, fmt.Errorf("transformer: load: block %d mask has %d heads, want %d",
				l, len(mask), m.Heads)
		}
		copy(m.Blocks[l].HeadPruned, mask)
	}
	return m, nil
}

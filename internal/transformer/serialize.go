package transformer

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelExport is the gob wire format of a Model: the configuration, every
// named tensor, and the head-pruning masks. Gradients are not serialized.
type modelExport struct {
	Config  Config
	Tensors map[string][]float32
	Pruned  [][]bool
}

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	exp := modelExport{
		Config:  m.Config,
		Tensors: make(map[string][]float32),
		Pruned:  make([][]bool, len(m.Blocks)),
	}
	for _, p := range m.Params() {
		exp.Tensors[p.Name] = p.Value.Data
	}
	for l, b := range m.Blocks {
		exp.Pruned[l] = append([]bool(nil), b.HeadPruned...)
	}
	if err := gob.NewEncoder(w).Encode(exp); err != nil {
		return fmt.Errorf("transformer: save: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var exp modelExport
	if err := gob.NewDecoder(r).Decode(&exp); err != nil {
		return nil, fmt.Errorf("transformer: load: %w", err)
	}
	if err := exp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("transformer: load: %w", err)
	}
	m := New(exp.Config, 0)
	for _, p := range m.Params() {
		data, ok := exp.Tensors[p.Name]
		if !ok {
			return nil, fmt.Errorf("transformer: load: missing tensor %q", p.Name)
		}
		if len(data) != len(p.Value.Data) {
			return nil, fmt.Errorf("transformer: load: tensor %q has %d values, want %d",
				p.Name, len(data), len(p.Value.Data))
		}
		copy(p.Value.Data, data)
	}
	if len(exp.Pruned) != len(m.Blocks) {
		return nil, fmt.Errorf("transformer: load: pruning masks for %d blocks, want %d",
			len(exp.Pruned), len(m.Blocks))
	}
	for l, mask := range exp.Pruned {
		if len(mask) != m.Heads {
			return nil, fmt.Errorf("transformer: load: block %d mask has %d heads, want %d",
				l, len(mask), m.Heads)
		}
		copy(m.Blocks[l].HeadPruned, mask)
	}
	return m, nil
}

package transformer

import (
	"decepticon/internal/nn"
	"decepticon/internal/rng"
	"decepticon/internal/stats"
	"decepticon/internal/tensor"
)

// Example is one labeled sequence.
type Example struct {
	Tokens []int
	Label  int
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	WarmupSteps int
	// TotalSteps enables the warmup-then-linear-decay schedule (see
	// nn.AdamW.TotalSteps).
	TotalSteps int
	Seed       uint64
	// HeadLR, when non-zero, trains the task head with its own (typically
	// much larger) learning rate while the backbone uses LR — the standard
	// discriminative fine-tuning setup. This is what makes the paper's
	// Figs 5-6 shape: the freshly initialized last layer moves a lot, the
	// backbone barely moves.
	HeadLR float64
	// FreezeBackbone trains only the classification head — used to build
	// the distillation substitute models quickly and to model "feature
	// extraction" style fine-tuning.
	FreezeBackbone bool
	// OnEpoch, if non-nil, observes training (epoch index, mean loss).
	OnEpoch func(epoch int, loss float64)
}

// optimView adapts the model's named params to the nn.Optimizer interface.
// group selects which parameters are returned.
type paramGroup int

const (
	allParams paramGroup = iota
	headParams
	backboneParams
)

func (m *Model) optimView(group paramGroup) (params, grads []*tensor.Matrix) {
	for _, p := range m.Params() {
		if group == headParams && !p.IsHead {
			continue
		}
		if group == backboneParams && p.IsHead {
			continue
		}
		params = append(params, p.Value)
		grads = append(grads, p.Grad)
	}
	return params, grads
}

// Train fine-tunes (or pre-trains) the model on examples with AdamW and
// returns the final epoch's mean loss. Defaults mirror transformer
// fine-tuning practice: small LR (3e-4 here, scaled for the small models),
// a short warmup, decoupled weight decay, and few epochs.
func (m *Model) Train(examples []Example, cfg TrainConfig) float64 {
	if len(examples) == 0 {
		panic("transformer: Train with no examples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.LR == 0 {
		cfg.LR = 3e-4
	}
	// Parameter groups: the backbone and the task head, each with its own
	// optimizer so discriminative learning rates are possible.
	type group struct {
		opt           *nn.AdamW
		params, grads []*tensor.Matrix
	}
	mkOpt := func(lr float64) *nn.AdamW {
		opt := nn.NewAdamW(lr, cfg.WeightDecay)
		opt.WarmupSteps = cfg.WarmupSteps
		opt.TotalSteps = cfg.TotalSteps
		return opt
	}
	var groups []group
	switch {
	case cfg.FreezeBackbone:
		p, g := m.optimView(headParams)
		groups = []group{{mkOpt(cfg.LR), p, g}}
	case cfg.HeadLR != 0 && cfg.HeadLR != cfg.LR:
		bp, bg := m.optimView(backboneParams)
		hp, hg := m.optimView(headParams)
		groups = []group{{mkOpt(cfg.LR), bp, bg}, {mkOpt(cfg.HeadLR), hp, hg}}
	default:
		p, g := m.optimView(allParams)
		groups = []group{{mkOpt(cfg.LR), p, g}}
	}
	r := rng.New(cfg.Seed)

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(len(examples))
		var epochLoss float64
		batches := 0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			var batchLoss float64
			for _, idx := range perm[start:end] {
				ex := examples[idx]
				loss, _ := m.LossAndBackward(ex.Tokens, ex.Label)
				batchLoss += loss
			}
			n := float32(end - start)
			for _, g := range groups {
				for _, gr := range g.grads {
					gr.Scale(1 / n)
				}
				g.opt.Step(g.params, g.grads)
			}
			if cfg.FreezeBackbone {
				// Backbone grads still accumulated; drop them.
				m.ZeroGrads()
			}
			epochLoss += batchLoss / float64(n)
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastLoss)
		}
	}
	return lastLoss
}

// Evaluate returns classification accuracy over examples.
func (m *Model) Evaluate(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	pred := make([]int, len(examples))
	truth := make([]int, len(examples))
	for i, ex := range examples {
		pred[i] = m.Predict(ex.Tokens)
		truth[i] = ex.Label
	}
	return stats.Accuracy(pred, truth)
}

// EvaluateF1 returns the macro-F1 score over examples.
func (m *Model) EvaluateF1(examples []Example) float64 {
	pred := make([]int, len(examples))
	truth := make([]int, len(examples))
	for i, ex := range examples {
		pred[i] = m.Predict(ex.Tokens)
		truth[i] = ex.Label
	}
	return stats.MacroF1(pred, truth, m.Labels)
}

// Predictions returns the model's argmax outputs for examples — used for
// the victim/clone "matched predictions" metric and for distillation.
func (m *Model) Predictions(examples []Example) []int {
	out := make([]int, len(examples))
	for i, ex := range examples {
		out[i] = m.Predict(ex.Tokens)
	}
	return out
}

// FineTuneFrom builds a fine-tuned model from a pre-trained backbone: the
// backbone weights are copied, a fresh task head with numLabels outputs is
// attached (the "task-dependent last layer"), and the model is trained on
// examples. headSeed controls the new head's initialization.
func FineTuneFrom(pre *Model, numLabels int, examples []Example, cfg TrainConfig, headSeed uint64) *Model {
	ft := New(pre.Config.WithLabels(numLabels), headSeed)
	// Copy backbone.
	ft.CopyEmbeddingsFrom(pre)
	for l := range pre.Blocks {
		ft.CopyBlockFrom(pre, l)
	}
	ft.Train(examples, cfg)
	return ft
}

// HeadConfidence returns, per block and head, the paper's head-pruning
// Confidence metric (§8): the mean over probe sequences and positions of
// the maximum attention weight of that head.
func (m *Model) HeadConfidence(probes [][]int) [][]float64 {
	conf := make([][]float64, m.Layers)
	for l := range conf {
		conf[l] = make([]float64, m.Heads)
	}
	if len(probes) == 0 {
		return conf
	}
	for _, tokens := range probes {
		m.Logits(tokens) // fills block caches
		for l, b := range m.Blocks {
			for h := 0; h < m.Heads; h++ {
				if b.HeadPruned[h] || b.cache.probs[h] == nil {
					continue
				}
				p := b.cache.probs[h]
				var sum float64
				for i := 0; i < p.Rows; i++ {
					row := p.Row(i)
					mx := row[0]
					for _, v := range row {
						if v > mx {
							mx = v
						}
					}
					sum += float64(mx)
				}
				conf[l][h] += sum / float64(p.Rows)
			}
		}
	}
	for l := range conf {
		for h := range conf[l] {
			conf[l][h] /= float64(len(probes))
		}
	}
	return conf
}

// HeadConfidenceSeries returns, per block and head, the Confidence value
// of each probe input separately (indexed [layer][head][probe]). The
// per-input series is what the Fig 20 correlation cells compare: two
// models share a head's "behavior" when their confidences co-vary across
// inputs, not merely when their averages agree.
func (m *Model) HeadConfidenceSeries(probes [][]int) [][][]float64 {
	series := make([][][]float64, m.Layers)
	for l := range series {
		series[l] = make([][]float64, m.Heads)
		for h := range series[l] {
			series[l][h] = make([]float64, len(probes))
		}
	}
	for pi, tokens := range probes {
		m.Logits(tokens) // fills block caches
		for l, b := range m.Blocks {
			for h := 0; h < m.Heads; h++ {
				if b.HeadPruned[h] || b.cache.probs[h] == nil {
					continue
				}
				p := b.cache.probs[h]
				var sum float64
				for i := 0; i < p.Rows; i++ {
					row := p.Row(i)
					mx := row[0]
					for _, v := range row {
						if v > mx {
							mx = v
						}
					}
					sum += float64(mx)
				}
				series[l][h][pi] = sum / float64(p.Rows)
			}
		}
	}
	return series
}

// PruneHeads marks the given heads of block l as pruned.
func (m *Model) PruneHeads(l int, heads ...int) {
	for _, h := range heads {
		m.Blocks[l].HeadPruned[h] = true
	}
}

// PrunedHeadCount returns the total number of pruned heads.
func (m *Model) PrunedHeadCount() int {
	n := 0
	for _, b := range m.Blocks {
		for _, p := range b.HeadPruned {
			if p {
				n++
			}
		}
	}
	return n
}

// Package zoo builds the model population the paper characterizes and
// attacks: 70 pre-trained transformer releases from multiple sources and
// frameworks, and 170 models fine-tuned from them on downstream tasks
// (paper §7.1). Models are genuinely trained in-process (see
// internal/transformer); execution fingerprints come from each release's
// gpusim profile, which fine-tuned models inherit.
package zoo

import (
	"fmt"

	"decepticon/internal/gpusim"
	"decepticon/internal/transformer"
)

// sourceSpec describes a model publisher and its execution habits
// (paper §4.2: framework and developer-specific kernel preferences).
type sourceSpec struct {
	name         string
	framework    gpusim.Framework
	tensorCores  bool
	shortKernels bool
	xla          bool
}

var sources = []sourceSpec{
	{name: "huggingface", framework: gpusim.PyTorch},
	{name: "google", framework: gpusim.TensorFlow},
	{name: "nvidia", framework: gpusim.PyTorch, tensorCores: true},
	{name: "nvidia-tf", framework: gpusim.TensorFlow, tensorCores: true, xla: true},
	{name: "meta", framework: gpusim.PyTorch, shortKernels: true},
	{name: "amazon", framework: gpusim.MXNet},
}

// entry is one pre-trained release in the catalog.
type entry struct {
	model    string // e.g. "bert-base-uncased"
	source   string
	arch     string // transformer.Family key
	language string // "en", "fr", "ru"
	cased    bool
	// decoder marks GPT-style releases: causal masked self-attention.
	decoder bool
	// profileKey identifies the release binary; entries sharing a
	// profileKey have *identical* execution fingerprints (e.g. the cased
	// and uncased variants of one release), which is exactly the corner
	// the query-output detector exists for (§4.2, §5.3).
	profileKey string
	// corpus distinguishes training corpora; it seeds the vocabulary.
	corpus string
}

func (e entry) name() string { return e.source + "_" + e.model }

// catalog returns the deterministic pre-trained release catalog, largest
// first so truncation to small counts keeps variety. The default first 70
// entries are the zoo's pre-trained population.
func catalog() []entry {
	var out []entry
	add := func(e entry) {
		if e.language == "" {
			e.language = "en"
		}
		if e.profileKey == "" {
			e.profileKey = e.source + "/" + e.arch + "/v1"
		}
		if e.corpus == "" {
			e.corpus = e.model
		}
		out = append(out, e)
	}

	// Ambiguity cluster A: four HuggingFace releases of the base
	// architecture that share one execution profile — distinguishable only
	// through query outputs (BERT cased/uncased, CamemBERT, RuBERT).
	clusterA := "huggingface/base/shared"
	add(entry{model: "bert-base-uncased", source: "huggingface", arch: "base", profileKey: clusterA})
	add(entry{model: "bert-base-cased", source: "huggingface", arch: "base", cased: true, profileKey: clusterA})
	add(entry{model: "camembert-base", source: "huggingface", arch: "base", language: "fr", profileKey: clusterA})
	add(entry{model: "rubert-base", source: "huggingface", arch: "base", language: "ru", profileKey: clusterA})

	// Ambiguity cluster B: Google's cased/uncased pair.
	clusterB := "google/base/shared"
	add(entry{model: "bert-base-uncased", source: "google", arch: "base", profileKey: clusterB})
	add(entry{model: "bert-base-cased", source: "google", arch: "base", cased: true, profileKey: clusterB})

	// Ambiguity cluster C: a small-architecture quadruple (kept early in
	// the catalog so reduced test zoos still contain an ambiguity cluster).
	clusterC := "huggingface/small/shared"
	add(entry{model: "bert-small-uncased", source: "huggingface", arch: "small", profileKey: clusterC})
	add(entry{model: "bert-small-cased", source: "huggingface", arch: "small", cased: true, profileKey: clusterC})
	add(entry{model: "camembert-small", source: "huggingface", arch: "small", language: "fr", profileKey: clusterC})
	add(entry{model: "rubert-small", source: "huggingface", arch: "small", language: "ru", profileKey: clusterC})

	// Every source releases the BERT family at every size.
	for _, src := range sources {
		for _, size := range []string{"tiny", "mini", "small", "medium", "base", "large"} {
			if (src.name == "huggingface" || src.name == "google") && size == "base" {
				continue // already present via the ambiguity clusters
			}
			add(entry{model: "bert-" + size, source: src.name, arch: size})
		}
	}

	// RoBERTa releases (same architecture as BERT, different corpus).
	for _, src := range []string{"huggingface", "meta", "nvidia"} {
		for _, size := range []string{"small", "base", "large"} {
			add(entry{
				model: "roberta-" + size, source: src, arch: size,
				profileKey: src + "/roberta-" + size + "/v1",
				corpus:     "roberta",
			})
		}
	}

	// Assorted popular architectures (scaled-down analogs).
	add(entry{model: "distilbert-base", source: "huggingface", arch: "mini", corpus: "bert"})
	add(entry{model: "mobilebert-uncased", source: "google", arch: "tiny"})
	add(entry{model: "albert-base", source: "huggingface", arch: "small", profileKey: "huggingface/albert/v1"})
	add(entry{model: "albert-large", source: "huggingface", arch: "medium", profileKey: "huggingface/albert/v2"})
	add(entry{model: "deberta-xsmall", source: "huggingface", arch: "mini", profileKey: "huggingface/deberta/v1"})
	add(entry{model: "deberta-base", source: "huggingface", arch: "base", profileKey: "huggingface/deberta/v2"})
	add(entry{model: "gpt2-small", source: "huggingface", arch: "small", profileKey: "huggingface/gpt2/v1", decoder: true})
	add(entry{model: "gpt2-medium", source: "huggingface", arch: "medium", profileKey: "huggingface/gpt2/v2", decoder: true})
	add(entry{model: "t5-small", source: "google", arch: "small", profileKey: "google/t5/v1"})
	add(entry{model: "bart-base", source: "meta", arch: "base", profileKey: "meta/bart/v1", decoder: true})
	add(entry{model: "xlnet-base", source: "huggingface", arch: "base", profileKey: "huggingface/xlnet/v1"})
	add(entry{model: "spanbert-base", source: "huggingface", arch: "base", profileKey: "huggingface/spanbert/v1", corpus: "spanbert"})

	// A few more assorted releases.
	add(entry{model: "electra-small", source: "google", arch: "small", profileKey: "google/electra/v1"})
	add(entry{model: "tinybert", source: "huggingface", arch: "tiny", profileKey: "huggingface/tinybert/v1"})
	add(entry{model: "bart-large", source: "meta", arch: "large", profileKey: "meta/bart-large/v1", decoder: true})

	// Version re-releases: same model name, updated release (new profile).
	for i, e := range []entry{
		{model: "bert-base-uncased-v2", source: "huggingface", arch: "base"},
		{model: "bert-large-v2", source: "nvidia", arch: "large"},
		{model: "roberta-base-v2", source: "meta", arch: "base", corpus: "roberta"},
		{model: "bert-base-v2", source: "amazon", arch: "base"},
		{model: "bert-medium-v2", source: "google", arch: "medium"},
		{model: "gpt2-small-v2", source: "huggingface", arch: "small"},
		{model: "bert-small-v2", source: "nvidia-tf", arch: "small"},
		{model: "roberta-large-v2", source: "meta", arch: "large", corpus: "roberta"},
		{model: "bert-tiny-v2", source: "amazon", arch: "tiny"},
		{model: "bert-mini-v2", source: "google", arch: "mini"},
	} {
		e.profileKey = fmt.Sprintf("%s/%s/v2-%d", e.source, e.arch, i)
		out = append(out, withDefaults(e))
	}
	return out
}

func withDefaults(e entry) entry {
	if e.language == "" {
		e.language = "en"
	}
	if e.corpus == "" {
		e.corpus = e.model
	}
	return e
}

// profileFor builds the gpusim release profile of an entry.
func profileFor(e entry) gpusim.Profile {
	var spec sourceSpec
	for _, s := range sources {
		if s.name == e.source {
			spec = s
			break
		}
	}
	return gpusim.Profile{
		Source:       e.source,
		Framework:    spec.framework,
		TensorCores:  spec.tensorCores,
		ShortKernels: spec.shortKernels,
		XLA:          spec.xla,
		Seed:         profileSeed(e.profileKey),
	}
}

// archFor resolves an entry's architecture configuration.
func archFor(e entry) transformer.Config {
	cfg, ok := transformer.Family()[e.arch]
	if !ok {
		panic(fmt.Sprintf("zoo: unknown architecture %q", e.arch))
	}
	cfg.Name = e.arch
	cfg.Causal = e.decoder
	return cfg
}

package zoo

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"decepticon/internal/gpusim"
	"decepticon/internal/task"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// The zoo's wire format. Model weights dominate the size, so the stream
// is gzip-compressed.

type pretrainedExport struct {
	Name     string
	ArchName string
	Source   string
	Language string
	Cased    bool
	Words    []string // vocabulary in id order
	Profile  gpusim.Profile
	Model    []byte // transformer gob
}

type fineTunedExport struct {
	Name       string
	Pretrained string // name reference
	Task       task.Task
	Model      []byte
	Train, Dev []transformer.Example
}

type zooExport struct {
	Version    int
	Pretrained []pretrainedExport
	FineTuned  []fineTunedExport
}

const wireVersion = 1

func encodeModel(m *transformer.Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the zoo to w (gzip-compressed gob). A saved zoo restores
// bit-identically: every weight, vocabulary word, dataset example, and
// execution profile round-trips.
func (z *Zoo) Save(w io.Writer) error {
	exp := zooExport{Version: wireVersion}
	for _, p := range z.Pretrained {
		mb, err := encodeModel(p.Model)
		if err != nil {
			return fmt.Errorf("zoo: save %s: %w", p.Name, err)
		}
		exp.Pretrained = append(exp.Pretrained, pretrainedExport{
			Name: p.Name, ArchName: p.ArchName, Source: p.Source,
			Language: p.Language, Cased: p.Cased,
			Words: p.Vocab.Words(), Profile: p.Profile, Model: mb,
		})
	}
	for _, f := range z.FineTuned {
		mb, err := encodeModel(f.Model)
		if err != nil {
			return fmt.Errorf("zoo: save %s: %w", f.Name, err)
		}
		exp.FineTuned = append(exp.FineTuned, fineTunedExport{
			Name: f.Name, Pretrained: f.Pretrained.Name, Task: f.Task,
			Model: mb, Train: f.Train, Dev: f.Dev,
		})
	}
	gz := gzip.NewWriter(w)
	if err := gob.NewEncoder(gz).Encode(exp); err != nil {
		return fmt.Errorf("zoo: save: %w", err)
	}
	return gz.Close()
}

// Load reads a zoo previously written by Save.
func Load(r io.Reader) (*Zoo, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("zoo: load: %w", err)
	}
	defer gz.Close()
	var exp zooExport
	if err := gob.NewDecoder(gz).Decode(&exp); err != nil {
		return nil, fmt.Errorf("zoo: load: %w", err)
	}
	if exp.Version != wireVersion {
		return nil, fmt.Errorf("zoo: load: wire version %d, want %d", exp.Version, wireVersion)
	}
	z := &Zoo{}
	for _, pe := range exp.Pretrained {
		m, err := transformer.Load(bytes.NewReader(pe.Model))
		if err != nil {
			return nil, fmt.Errorf("zoo: load %s: %w", pe.Name, err)
		}
		z.Pretrained = append(z.Pretrained, &Pretrained{
			Name: pe.Name, Arch: m.Config, ArchName: pe.ArchName,
			Source: pe.Source, Language: pe.Language, Cased: pe.Cased,
			Vocab:   tokenizer.Restore(pe.Name, pe.Language, pe.Cased, pe.Words),
			Model:   m,
			Profile: pe.Profile,
		})
	}
	for _, fe := range exp.FineTuned {
		pre := z.PretrainedByName(fe.Pretrained)
		if pre == nil {
			return nil, fmt.Errorf("zoo: load %s: unknown pre-trained %q", fe.Name, fe.Pretrained)
		}
		m, err := transformer.Load(bytes.NewReader(fe.Model))
		if err != nil {
			return nil, fmt.Errorf("zoo: load %s: %w", fe.Name, err)
		}
		z.FineTuned = append(z.FineTuned, &FineTuned{
			Name: fe.Name, Pretrained: pre, Task: fe.Task,
			Model: m, Train: fe.Train, Dev: fe.Dev,
		})
	}
	return z, nil
}

// SaveFile writes the zoo to path.
func (z *Zoo) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := z.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a zoo from path.
func LoadFile(path string) (*Zoo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// BuildOrLoad loads the zoo from cachePath when it exists, otherwise
// builds it and writes the cache. An empty cachePath always builds.
func BuildOrLoad(cfg BuildConfig, cachePath string) (*Zoo, error) {
	return BuildOrLoadContext(context.Background(), cfg, cachePath)
}

// BuildOrLoadContext is BuildOrLoad with cooperative cancellation of the
// build phase (loading an existing cache is quick and never cancelled).
func BuildOrLoadContext(ctx context.Context, cfg BuildConfig, cachePath string) (*Zoo, error) {
	if cachePath != "" {
		if z, err := LoadFile(cachePath); err == nil {
			return z, nil
		}
	}
	z, err := BuildContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if cachePath != "" {
		if err := z.SaveFile(cachePath); err != nil {
			return z, fmt.Errorf("zoo: cache write failed: %w", err)
		}
	}
	return z, nil
}

package zoo

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"slices"

	"decepticon/internal/fsatomic"
	"decepticon/internal/gpusim"
	"decepticon/internal/task"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// The zoo's wire format. Model weights dominate the size, so the stream
// is gzip-compressed.

type pretrainedExport struct {
	Name     string
	ArchName string
	Source   string
	Language string
	Cased    bool
	Words    []string // vocabulary in id order
	Profile  gpusim.Profile
	Model    []byte // transformer gob
}

type fineTunedExport struct {
	Name       string
	Pretrained string // name reference
	Task       task.Task
	Model      []byte
	// Train/Dev were persisted through wire version 2. Version 3 stops
	// writing them — the split is a pure function of (name, config), so
	// the loader regenerates it byte-identically — but the fields stay so
	// gob still decodes old caches.
	Train, Dev []transformer.Example
}

// cacheConfig is the population-determining subset of BuildConfig,
// embedded in the wire format so a cache file knows what it holds.
// Workers, Obs, and OnProgress are deliberately absent: they change
// throughput and instrumentation, never the built population (the
// worker-count invariance pinned by the zoo tests), so a cache built at
// -workers 8 is byte-identical to one built serially.
type cacheConfig struct {
	NumPretrained    int
	NumFineTuned     int
	PretrainExamples int
	PretrainEpochs   int
	FineTuneExamples int
	FineTuneEpochs   int
	FineTuneLR       float64
	FineTuneHeadLR   float64
	FineTuneDecay    float64
	Seed             uint64
	ArchFilter       []string
}

// configKey projects a BuildConfig onto its population-determining
// fields.
func configKey(cfg BuildConfig) cacheConfig {
	return cacheConfig{
		NumPretrained:    cfg.NumPretrained,
		NumFineTuned:     cfg.NumFineTuned,
		PretrainExamples: cfg.PretrainExamples,
		PretrainEpochs:   cfg.PretrainEpochs,
		FineTuneExamples: cfg.FineTuneExamples,
		FineTuneEpochs:   cfg.FineTuneEpochs,
		FineTuneLR:       cfg.FineTuneLR,
		FineTuneHeadLR:   cfg.FineTuneHeadLR,
		FineTuneDecay:    cfg.FineTuneDecay,
		Seed:             cfg.Seed,
		ArchFilter:       cfg.ArchFilter,
	}
}

func (c cacheConfig) equal(o cacheConfig) bool {
	return c.NumPretrained == o.NumPretrained &&
		c.NumFineTuned == o.NumFineTuned &&
		c.PretrainExamples == o.PretrainExamples &&
		c.PretrainEpochs == o.PretrainEpochs &&
		c.FineTuneExamples == o.FineTuneExamples &&
		c.FineTuneEpochs == o.FineTuneEpochs &&
		c.FineTuneLR == o.FineTuneLR &&
		c.FineTuneHeadLR == o.FineTuneHeadLR &&
		c.FineTuneDecay == o.FineTuneDecay &&
		c.Seed == o.Seed &&
		slices.Equal(c.ArchFilter, o.ArchFilter)
}

// buildConfig reconstructs the BuildConfig a loaded cache was built
// with (instrumentation fields zero).
func (c cacheConfig) buildConfig() BuildConfig {
	return BuildConfig{
		NumPretrained:    c.NumPretrained,
		NumFineTuned:     c.NumFineTuned,
		PretrainExamples: c.PretrainExamples,
		PretrainEpochs:   c.PretrainEpochs,
		FineTuneExamples: c.FineTuneExamples,
		FineTuneEpochs:   c.FineTuneEpochs,
		FineTuneLR:       c.FineTuneLR,
		FineTuneHeadLR:   c.FineTuneHeadLR,
		FineTuneDecay:    c.FineTuneDecay,
		Seed:             c.Seed,
		ArchFilter:       c.ArchFilter,
	}
}

type zooExport struct {
	Version int
	// Config records what build produced this cache (version >= 2).
	// BuildOrLoad validates it against the requested configuration, so a
	// cache written at one -scale is never silently served to another.
	Config     cacheConfig
	Pretrained []pretrainedExport
	FineTuned  []fineTunedExport
}

// wireVersion 3 stopped persisting fine-tuned Train/Dev splits (the
// loader regenerates them from the recorded config). Version 2 embedded
// the build configuration. Version 1 files (no recorded config) still
// load, but BuildOrLoad treats them as unvalidatable and rebuilds with a
// warning.
const wireVersion = 3

func encodeModel(m *transformer.Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the zoo to w (gzip-compressed gob). A saved zoo restores
// bit-identically: every weight, vocabulary word, execution profile, and
// the build configuration (Zoo.Config) round-trip; fine-tuned train/dev
// splits are regenerated from the config on load rather than persisted.
func (z *Zoo) Save(w io.Writer) error {
	exp := zooExport{Version: wireVersion, Config: configKey(z.Config)}
	for _, p := range z.Pretrained {
		mb, err := encodeModel(p.Model())
		if err != nil {
			return fmt.Errorf("zoo: save %s: %w", p.Name, err)
		}
		exp.Pretrained = append(exp.Pretrained, pretrainedExport{
			Name: p.Name, ArchName: p.ArchName, Source: p.Source,
			Language: p.Language, Cased: p.Cased,
			Words: p.Vocab.Words(), Profile: p.Profile, Model: mb,
		})
	}
	for _, f := range z.FineTuned {
		mb, err := encodeModel(f.Model())
		if err != nil {
			return fmt.Errorf("zoo: save %s: %w", f.Name, err)
		}
		exp.FineTuned = append(exp.FineTuned, fineTunedExport{
			Name: f.Name, Pretrained: f.Pretrained.Name, Task: f.Task,
			Model: mb,
		})
	}
	gz := gzip.NewWriter(w)
	if err := gob.NewEncoder(gz).Encode(exp); err != nil {
		return fmt.Errorf("zoo: save: %w", err)
	}
	return gz.Close()
}

// Load reads a zoo previously written by Save. All wire versions load; a
// version-1 zoo comes back with a zero Config (the format predates
// recording it), which BuildOrLoad treats as unvalidatable.
func Load(r io.Reader) (*Zoo, error) {
	z, _, err := loadVersion(r)
	return z, err
}

// loadVersion is Load, also reporting the file's wire version so
// BuildOrLoad can tell "no recorded config" (v1) apart from a genuine
// config mismatch.
func loadVersion(r io.Reader) (*Zoo, int, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, 0, fmt.Errorf("zoo: load: %w", err)
	}
	defer gz.Close()
	var exp zooExport
	if err := gob.NewDecoder(gz).Decode(&exp); err != nil {
		return nil, 0, fmt.Errorf("zoo: load: %w", err)
	}
	if exp.Version < 1 || exp.Version > wireVersion {
		return nil, 0, fmt.Errorf("zoo: load: wire version %d, want 1..%d", exp.Version, wireVersion)
	}
	z := &Zoo{Config: exp.Config.buildConfig()}
	// Resolve backbone references through a local map: the Zoo's own
	// lazy name index must not be built while the population is still
	// half-assembled.
	preByName := make(map[string]*Pretrained, len(exp.Pretrained))
	for _, pe := range exp.Pretrained {
		m, err := transformer.Load(bytes.NewReader(pe.Model))
		if err != nil {
			return nil, 0, fmt.Errorf("zoo: load %s: %w", pe.Name, err)
		}
		p := &Pretrained{
			Name: pe.Name, Arch: m.Config, ArchName: pe.ArchName,
			Source: pe.Source, Language: pe.Language, Cased: pe.Cased,
			Vocab:   tokenizer.Restore(pe.Name, pe.Language, pe.Cased, pe.Words),
			Profile: pe.Profile,
			handle:  transformer.Resident(m),
		}
		z.Pretrained = append(z.Pretrained, p)
		preByName[p.Name] = p
	}
	for _, fe := range exp.FineTuned {
		pre := preByName[fe.Pretrained]
		if pre == nil {
			return nil, 0, fmt.Errorf("zoo: load %s: unknown pre-trained %q", fe.Name, fe.Pretrained)
		}
		m, err := transformer.Load(bytes.NewReader(fe.Model))
		if err != nil {
			return nil, 0, fmt.Errorf("zoo: load %s: %w", fe.Name, err)
		}
		train, dev := fe.Train, fe.Dev
		if len(train) == 0 && len(dev) == 0 {
			// Version 3: the split was not persisted; regenerate it from
			// the recorded config (byte-identical — pinned by test).
			train, dev = fineTuneData(pre, fe.Task, fe.Name, z.Config)
		}
		z.FineTuned = append(z.FineTuned, &FineTuned{
			Name: fe.Name, Pretrained: pre, Task: fe.Task,
			Train: train, Dev: dev,
			handle: transformer.Resident(m),
		})
	}
	return z, exp.Version, nil
}

// SaveFile writes the zoo to path atomically (fsatomic temp-file +
// rename), so a crash mid-write leaves either the previous cache or
// nothing — never a truncated file that a later run would fail (or
// worse, half-succeed) to load.
func (z *Zoo) SaveFile(path string) error {
	if err := fsatomic.Write(path, z.Save); err != nil {
		return fmt.Errorf("zoo: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a zoo from path.
func LoadFile(path string) (*Zoo, error) {
	z, _, err := loadFileVersion(path)
	return z, err
}

func loadFileVersion(path string) (*Zoo, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return loadVersion(f)
}

// BuildOrLoad loads the zoo from cachePath when it exists and matches
// cfg, otherwise builds it and writes the cache. An empty cachePath
// always builds.
func BuildOrLoad(cfg BuildConfig, cachePath string) (*Zoo, error) {
	return BuildOrLoadContext(context.Background(), cfg, cachePath)
}

// BuildOrLoadContext is BuildOrLoad with cooperative cancellation of the
// build phase (loading an existing cache is quick and never cancelled).
//
// A cache is served only when it was verifiably built with the requested
// configuration: the recorded BuildConfig must match cfg's
// population-determining fields (Workers/Obs/OnProgress are throughput
// and instrumentation knobs and do not participate). A missing file, an
// unreadable or corrupt file, a version-1 file (which predates the
// recorded config), or a config mismatch all fall back to a rebuild that
// overwrites the cache — with the reason logged through cfg.Obs, never
// silently: a cache written at -scale tiny must not masquerade as a
// -scale full population.
func BuildOrLoadContext(ctx context.Context, cfg BuildConfig, cachePath string) (*Zoo, error) {
	log := cfg.Obs.Log()
	if cachePath != "" {
		z, ver, err := loadFileVersion(cachePath)
		switch {
		case err == nil && ver < 2:
			log.Warn("zoo cache predates config validation; rebuilding",
				"path", cachePath, "wire_version", ver)
		case err == nil && !configKey(z.Config).equal(configKey(cfg)):
			log.Warn("zoo cache was built with a different configuration; rebuilding",
				"path", cachePath,
				"cached_pretrained", z.Config.NumPretrained,
				"cached_finetuned", z.Config.NumFineTuned,
				"want_pretrained", cfg.NumPretrained,
				"want_finetuned", cfg.NumFineTuned)
		case err == nil:
			return z, nil
		case os.IsNotExist(err):
			// First run with this cache path: build and write it, nothing
			// to warn about.
		default:
			log.Warn("zoo cache unreadable; rebuilding", "path", cachePath, "err", err)
		}
	}
	z, err := BuildContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if cachePath != "" {
		if err := z.SaveFile(cachePath); err != nil {
			return z, fmt.Errorf("zoo: cache write failed: %w", err)
		}
	}
	return z, nil
}

package zoo

import (
	"bytes"
	"path/filepath"
	"testing"

	"decepticon/internal/gpusim"
)

func TestZooRoundTrip(t *testing.T) {
	z := getZoo(t)
	var buf bytes.Buffer
	if err := z.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pretrained) != len(z.Pretrained) || len(got.FineTuned) != len(z.FineTuned) {
		t.Fatalf("population %d/%d, want %d/%d",
			len(got.Pretrained), len(got.FineTuned), len(z.Pretrained), len(z.FineTuned))
	}
	// Weights round-trip bit-identically.
	for i, p := range z.Pretrained {
		q := got.Pretrained[i]
		if q.Name != p.Name || q.Source != p.Source || q.Cased != p.Cased || q.Language != p.Language {
			t.Fatalf("metadata mismatch for %s", p.Name)
		}
		a, b := p.Model.Params(), q.Model.Params()
		for j := range a {
			for k := range a[j].Value.Data {
				if a[j].Value.Data[k] != b[j].Value.Data[k] {
					t.Fatalf("%s tensor %s differs after round trip", p.Name, a[j].Name)
				}
			}
		}
		// Vocabulary round-trips.
		wa, wb := p.Vocab.Words(), q.Vocab.Words()
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("%s vocab differs after round trip", p.Name)
			}
		}
	}
	// Fine-tuned victims behave identically: same predictions, same trace.
	f, g := z.FineTuned[0], got.FineTuned[0]
	for _, ex := range f.Dev {
		if f.Model.Predict(ex.Tokens) != g.Model.Predict(ex.Tokens) {
			t.Fatal("restored victim predicts differently")
		}
	}
	ta := f.Trace(gpusim.Options{})
	tb := g.Trace(gpusim.Options{})
	if len(ta.Execs) != len(tb.Execs) {
		t.Fatal("restored victim trace differs")
	}
	for i := range ta.Execs {
		if ta.Execs[i] != tb.Execs[i] {
			t.Fatal("restored victim trace differs")
		}
	}
	// Pruning masks round-trip.
	if g.Model.PrunedHeadCount() != f.Model.PrunedHeadCount() {
		t.Fatal("pruning masks lost")
	}
}

func TestBuildOrLoadCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.gob.gz")
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 2
	cfg.PretrainExamples = 20
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 20
	cfg.FineTuneEpochs = 1

	a, err := BuildOrLoad(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildOrLoad(cfg, path) // second call must hit the cache
	if err != nil {
		t.Fatal(err)
	}
	if a.Pretrained[0].Name != b.Pretrained[0].Name {
		t.Fatal("cache returned a different population")
	}
	w := a.FineTuned[0].Model.HeadW.V.Data
	v := b.FineTuned[0].Model.HeadW.V.Data
	for i := range w {
		if w[i] != v[i] {
			t.Fatal("cached weights differ")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a zoo"))); err == nil {
		t.Fatal("garbage must not load")
	}
}

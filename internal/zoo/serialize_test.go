package zoo

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"decepticon/internal/gpusim"
)

func TestZooRoundTrip(t *testing.T) {
	z := getZoo(t)
	var buf bytes.Buffer
	if err := z.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pretrained) != len(z.Pretrained) || len(got.FineTuned) != len(z.FineTuned) {
		t.Fatalf("population %d/%d, want %d/%d",
			len(got.Pretrained), len(got.FineTuned), len(z.Pretrained), len(z.FineTuned))
	}
	// Weights round-trip bit-identically.
	for i, p := range z.Pretrained {
		q := got.Pretrained[i]
		if q.Name != p.Name || q.Source != p.Source || q.Cased != p.Cased || q.Language != p.Language {
			t.Fatalf("metadata mismatch for %s", p.Name)
		}
		a, b := p.Model().Params(), q.Model().Params()
		for j := range a {
			for k := range a[j].Value.Data {
				if a[j].Value.Data[k] != b[j].Value.Data[k] {
					t.Fatalf("%s tensor %s differs after round trip", p.Name, a[j].Name)
				}
			}
		}
		// Vocabulary round-trips.
		wa, wb := p.Vocab.Words(), q.Vocab.Words()
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("%s vocab differs after round trip", p.Name)
			}
		}
	}
	// Fine-tuned victims behave identically: same predictions, same trace.
	f, g := z.FineTuned[0], got.FineTuned[0]
	for _, ex := range f.Dev {
		if f.Model().Predict(ex.Tokens) != g.Model().Predict(ex.Tokens) {
			t.Fatal("restored victim predicts differently")
		}
	}
	ta := f.Trace(gpusim.Options{})
	tb := g.Trace(gpusim.Options{})
	if len(ta.Execs) != len(tb.Execs) {
		t.Fatal("restored victim trace differs")
	}
	for i := range ta.Execs {
		if ta.Execs[i] != tb.Execs[i] {
			t.Fatal("restored victim trace differs")
		}
	}
	// Pruning masks round-trip.
	if g.Model().PrunedHeadCount() != f.Model().PrunedHeadCount() {
		t.Fatal("pruning masks lost")
	}
}

func TestBuildOrLoadCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.gob.gz")
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 2
	cfg.PretrainExamples = 20
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 20
	cfg.FineTuneEpochs = 1

	a, err := BuildOrLoad(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildOrLoad(cfg, path) // second call must hit the cache
	if err != nil {
		t.Fatal(err)
	}
	if a.Pretrained[0].Name != b.Pretrained[0].Name {
		t.Fatal("cache returned a different population")
	}
	w := a.FineTuned[0].Model().HeadW.V.Data
	v := b.FineTuned[0].Model().HeadW.V.Data
	for i := range w {
		if w[i] != v[i] {
			t.Fatal("cached weights differ")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a zoo"))); err == nil {
		t.Fatal("garbage must not load")
	}
}

// tinyCacheConfig is a seconds-fast build for the cache-policy tests.
func tinyCacheConfig() BuildConfig {
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 2
	cfg.PretrainExamples = 20
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 20
	cfg.FineTuneEpochs = 1
	return cfg
}

// A cache built at one scale must never be served to a request for a
// different scale: the second BuildOrLoad must rebuild (and rewrite the
// cache for its own config), not silently return the smaller population.
func TestBuildOrLoadRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zoo.gob.gz")
	small := tinyCacheConfig()
	if _, err := BuildOrLoad(small, path); err != nil {
		t.Fatal(err)
	}

	bigger := small
	bigger.NumPretrained = 3
	bigger.NumFineTuned = 4
	z, err := BuildOrLoad(bigger, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Pretrained) != 3 || len(z.FineTuned) != 4 {
		t.Fatalf("mismatched cache served stale population: %d/%d pretrained/finetuned, want 3/4",
			len(z.Pretrained), len(z.FineTuned))
	}
	// The rebuild rewrote the cache for the new config: a third call with
	// the same config must now hit it (same population back, no rebuild
	// visible through a changed file).
	z2, err := BuildOrLoad(bigger, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(z2.Pretrained) != 3 || z2.Pretrained[0].Name != z.Pretrained[0].Name {
		t.Fatal("rewritten cache does not round-trip the rebuilt population")
	}
	// Training-budget fields participate too, not just population counts.
	differentSeed := bigger
	differentSeed.Seed = bigger.Seed + 1
	if z3, err := BuildOrLoad(differentSeed, path); err != nil {
		t.Fatal(err)
	} else if z3.Config.Seed != differentSeed.Seed {
		t.Fatalf("cache with seed %d served to a request for seed %d",
			z3.Config.Seed, differentSeed.Seed)
	}
}

// A version-1 cache (no recorded config) cannot be validated: Load still
// reads it, but BuildOrLoad must rebuild and upgrade the file to v2.
func TestBuildOrLoadMigratesV1Cache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zoo.gob.gz")
	cfg := tinyCacheConfig()
	built, err := BuildOrLoad(cfg, path)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the cache as a v1 file: same population, Version forced to
	// 1 and the config zeroed — exactly what a pre-upgrade binary wrote.
	// (Fresh struct rather than a copy: Zoo carries a sync.Once index.)
	v1 := &Zoo{Pretrained: built.Pretrained, FineTuned: built.FineTuned}
	var buf bytes.Buffer
	if err := v1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := writeAsVersion(path, v1, 1); err != nil {
		t.Fatal(err)
	}
	z, _, err := loadFileVersion(path)
	if err != nil {
		t.Fatalf("v1 cache must still load directly: %v", err)
	}
	if len(z.Pretrained) != len(built.Pretrained) {
		t.Fatal("v1 load lost population")
	}

	// BuildOrLoad must not trust it: rebuild, then serve the upgraded v2
	// file on the next call.
	if _, err := BuildOrLoad(cfg, path); err != nil {
		t.Fatal(err)
	}
	_, ver, err := loadFileVersion(path)
	if err != nil {
		t.Fatal(err)
	}
	if ver != wireVersion {
		t.Fatalf("cache still at wire version %d after BuildOrLoad, want %d", ver, wireVersion)
	}
}

// A corrupt cache file must not be silently masked: BuildOrLoad rebuilds
// (logging the reason) and overwrites the file with a loadable one.
func TestBuildOrLoadRebuildsCorruptCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zoo.gob.gz")
	if err := os.WriteFile(path, []byte("truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheConfig()
	z, err := BuildOrLoad(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Pretrained) != cfg.NumPretrained {
		t.Fatal("rebuild after corrupt cache produced wrong population")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("rebuilt cache is not loadable: %v", err)
	}
}

// SaveFile goes through the atomic temp-file + rename path (the crash
// simulation itself lives in internal/fsatomic): a successful save
// leaves exactly the destination file behind, and overwriting an
// existing cache never exposes a partial file under the final name —
// a reader racing the save sees old bytes or new bytes, never a
// truncation.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zoo.gob.gz")
	cfg := tinyCacheConfig()
	z, err := BuildOrLoad(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := z.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("re-saved cache is not loadable: %v", err)
	}
}

// writeAsVersion re-encodes a zoo export stream with a forced wire
// version — the test's stand-in for files written by older binaries.
func writeAsVersion(path string, z *Zoo, version int) error {
	exp := zooExport{Version: version, Config: configKey(z.Config)}
	for _, p := range z.Pretrained {
		mb, err := encodeModel(p.Model())
		if err != nil {
			return err
		}
		exp.Pretrained = append(exp.Pretrained, pretrainedExport{
			Name: p.Name, ArchName: p.ArchName, Source: p.Source,
			Language: p.Language, Cased: p.Cased,
			Words: p.Vocab.Words(), Profile: p.Profile, Model: mb,
		})
	}
	for _, f := range z.FineTuned {
		mb, err := encodeModel(f.Model())
		if err != nil {
			return err
		}
		exp.FineTuned = append(exp.FineTuned, fineTunedExport{
			Name: f.Name, Pretrained: f.Pretrained.Name, Task: f.Task,
			Model: mb, Train: f.Train, Dev: f.Dev,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	if err := gob.NewEncoder(gz).Encode(exp); err != nil {
		f.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

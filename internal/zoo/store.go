package zoo

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"decepticon/internal/fsatomic"
	"decepticon/internal/parallel"
	"decepticon/internal/task"
	"decepticon/internal/transformer"
)

// The content-addressed zoo store: one object file per model plus a
// manifest, replacing the monolithic cache for populations too large to
// rebuild (or even hold) wholesale.
//
// Layout:
//
//	dir/manifest.json          — version, build config, one entry per model
//	dir/objects/<name>--<key8>.gz — gzipped transformer gob (the tensors)
//
// Each manifest entry carries the model's config key — a SHA-256 over
// every input that determines its weights (catalog fields, training
// knobs, the zoo seed; for fine-tuned models the backbone's key, so a
// backbone change cascades to its victims) — and the SHA-256 of the
// object file's bytes. Opening a store recomputes the desired population
// from the live catalog + config, reuses every entry whose key matches
// and whose object verifies, and retrains only the rest: a catalog tweak
// or count bump no longer rebuilds 240 models. Population counts are
// deliberately absent from entry keys, which is what makes growth
// incremental.
//
// Reused models come back as lazy handles (tensors load on first use and
// can be Released), so a campaign over a 10× store keeps only its working
// set in memory. Retrained models are resident, and their objects are
// written before the manifest — both via fsatomic, so a crash at any
// instant leaves a store that simply retrains a little more next open.
//
// Determinism contract: trainPretrained/trainFineTuned derive every seed
// from the model name and cfg.Seed, so a single-entry retrain is
// byte-identical to the same model from a full build — store-grown and
// freshly-built populations are indistinguishable (pinned by test).

// storeVersion guards the manifest schema.
const storeVersion = 1

type manifestEntry struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"` // "pretrained" | "finetuned"
	Key    string `json:"key"`  // hex SHA-256 of the config inputs
	Object string `json:"object"`
	SHA256 string `json:"sha256"` // hex SHA-256 of the object file bytes
}

type manifest struct {
	Version int    `json:"version"`
	// Config records the build that last wrote the store — provenance
	// only; reuse decisions run entirely on per-entry keys.
	Config  cacheConfig     `json:"config"`
	Entries []manifestEntry `json:"entries"`
}

// StoreStats reports what BuildOrOpenStore did: how much of the desired
// population was reused from disk, imported from a legacy cache, or
// retrained. Reused+Imported+PretrainedTrained+FineTunedTrained equals
// the population size.
type StoreStats struct {
	PretrainedTrained int
	FineTunedTrained  int
	Reused            int
	Imported          int
}

// Trained is the total number of models trained this open.
func (s StoreStats) Trained() int { return s.PretrainedTrained + s.FineTunedTrained }

// pretrainedKey hashes every input that determines a release's weights.
// Population counts are excluded on purpose: growing the zoo must not
// invalidate existing entries.
func pretrainedKey(e entry, cfg BuildConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "pretrained/v1\nmodel=%s\nsource=%s\narch=%s\nlanguage=%s\ncased=%t\ndecoder=%t\nprofile=%s\ncorpus=%s\n",
		e.model, e.source, e.arch, e.language, e.cased, e.decoder, e.profileKey, e.corpus)
	fmt.Fprintf(h, "examples=%d\nepochs=%d\nseed=%d\n",
		cfg.PretrainExamples, cfg.PretrainEpochs, cfg.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// fineTunedKey hashes a victim's inputs, including its backbone's key so
// backbone changes cascade.
func fineTunedKey(backboneKey, name, taskName string, i int, cfg BuildConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "finetuned/v1\nbackbone=%s\nindex=%d\nname=%s\ntask=%s\n",
		backboneKey, i, name, taskName)
	fmt.Fprintf(h, "examples=%d\nepochs=%d\nlr=%g\nheadlr=%g\ndecay=%g\nseed=%d\n",
		cfg.FineTuneExamples, cfg.FineTuneEpochs,
		cfg.FineTuneLR, cfg.FineTuneHeadLR, cfg.FineTuneDecay, cfg.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// objectName is the store file name for a model: the name sanitized for
// the filesystem plus a key prefix, so a key change writes a new file
// (content addressing) and a human can still tell which model is which.
func objectName(name, key string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_' || r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	return safe + "--" + key[:8] + ".gz"
}

// encodeObject gzips a model's gob bytes. Go's gzip writer emits no
// timestamp, so object bytes are deterministic.
func encodeObject(m *transformer.Model) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := m.Save(gz); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeObject(data []byte) (*transformer.Model, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	return transformer.Load(gz)
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// readManifest loads dir's manifest; a missing file returns an empty
// manifest (a fresh store), any other failure is an error the caller
// downgrades to a warning + full build.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		return &manifest{Version: storeVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("zoo: store manifest: %w", err)
	}
	if m.Version != storeVersion {
		return nil, fmt.Errorf("zoo: store manifest version %d, want %d", m.Version, storeVersion)
	}
	return &m, nil
}

func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'))
}

// verifyObject reads and hash-checks an object file. It returns the raw
// bytes so a hit costs one read.
func verifyObject(dir string, me manifestEntry) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, "objects", me.Object))
	if err != nil {
		return nil, err
	}
	if got := hashBytes(data); got != me.SHA256 {
		return nil, fmt.Errorf("object %s: sha256 %s, manifest says %s", me.Object, got[:8], me.SHA256[:8])
	}
	return data, nil
}

// lazyHandle returns a handle that loads (and hash-checks) the object on
// first use. Open-time verification already proved the file good; the
// per-load check catches the store being mutated underneath a running
// campaign.
func lazyHandle(dir string, me manifestEntry) *transformer.Handle {
	return transformer.Lazy(func() (*transformer.Model, error) {
		data, err := verifyObject(dir, me)
		if err != nil {
			return nil, fmt.Errorf("zoo store %s: %w", me.Name, err)
		}
		return decodeObject(data)
	})
}

// desiredEntry is one model the live catalog + config says the population
// must contain, in population order.
type desiredEntry struct {
	name string
	kind string
	key  string
	// pretrained
	cat entry
	// finetuned
	preIdx   int
	taskName string
	ftIndex  int
}

// BuildOrOpenStore opens (and, where needed, incrementally builds) the
// content-addressed store at dir, returning the population plus stats on
// how much work the open did. A fully warm store trains nothing and
// returns an all-lazy population; a fresh directory trains everything; a
// store whose catalog/config inputs partially changed retrains exactly
// the entries whose keys moved. Corrupt or missing objects are logged
// and retrained, never trusted.
//
// legacyCache, when non-empty and the store has no manifest yet, names a
// monolithic cache file to import: models whose recorded config matches
// cfg are re-encoded as store objects instead of retrained (the
// migration path off the old format).
func BuildOrOpenStore(ctx context.Context, cfg BuildConfig, dir, legacyCache string) (*Zoo, *StoreStats, error) {
	defer cfg.Obs.StartSpan("zoo.store_open_seconds").End()
	if cfg.NumPretrained <= 0 || cfg.NumFineTuned <= 0 {
		return nil, nil, fmt.Errorf("zoo: empty build configuration (%d pretrained, %d fine-tuned); use DefaultBuildConfig",
			cfg.NumPretrained, cfg.NumFineTuned)
	}
	log := cfg.Obs.Log()
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("zoo: store %s: %w", dir, err)
	}
	man, err := readManifest(dir)
	if err != nil {
		log.Warn("zoo store manifest unreadable; rebuilding all entries", "dir", dir, "err", err)
		man = &manifest{Version: storeVersion}
	}
	byKey := make(map[string]manifestEntry, len(man.Entries))
	for _, me := range man.Entries {
		byKey[me.Key] = me
	}

	// A fresh store may import a compatible monolithic cache instead of
	// retraining: same config ⇒ identical weights (the determinism
	// contract), so re-encoding the cache's models as objects is safe.
	var imported map[string]*transformer.Model
	if legacyCache != "" && len(man.Entries) == 0 {
		if legacy, _, err := loadFileVersion(legacyCache); err == nil &&
			configKey(legacy.Config).equal(configKey(cfg)) {
			imported = make(map[string]*transformer.Model, len(legacy.Pretrained)+len(legacy.FineTuned))
			for _, p := range legacy.Pretrained {
				imported[p.Name] = p.Model()
			}
			for _, f := range legacy.FineTuned {
				imported[f.Name] = f.Model()
			}
			log.Info("importing monolithic zoo cache into store",
				"cache", legacyCache, "dir", dir, "models", len(imported))
		} else if err != nil && !os.IsNotExist(err) {
			log.Warn("legacy zoo cache unreadable; building store from scratch",
				"cache", legacyCache, "err", err)
		}
	}

	// Desired population, in order: pre-trained (catalog order), then
	// fine-tuned (index order). Fine-tuned keys need backbone keys, so
	// compute the pre-trained half first.
	selected, err := selectedEntries(cfg)
	if err != nil {
		return nil, nil, err
	}
	shells := make([]*Pretrained, len(selected))
	preKeys := make([]string, len(selected))
	desired := make([]desiredEntry, 0, cfg.NumPretrained+cfg.NumFineTuned)
	for i, e := range selected {
		shells[i] = pretrainedShell(e, cfg)
		preKeys[i] = pretrainedKey(e, cfg)
		desired = append(desired, desiredEntry{
			name: shells[i].Name, kind: "pretrained", key: preKeys[i], cat: e, preIdx: i,
		})
	}
	tasks := fineTunedTasks()
	for i := 0; i < cfg.NumFineTuned; i++ {
		_, tk, name := fineTunedSpec(shells, tasks, i)
		preIdx := i % len(shells)
		desired = append(desired, desiredEntry{
			name: name, kind: "finetuned",
			key:    fineTunedKey(preKeys[preIdx], name, tk.Name, i, cfg),
			preIdx: preIdx, taskName: tk.Name, ftIndex: i,
		})
	}

	// Partition into reuse (key matches + object verifies), import, and
	// retrain. Verification reads every reused object once at open — the
	// price of never serving a corrupt store silently.
	stats := &StoreStats{}
	newEntries := make([]manifestEntry, len(desired))
	needTrain := make([]bool, len(desired))
	for i, d := range desired {
		if me, ok := byKey[d.key]; ok {
			if _, err := verifyObject(dir, me); err == nil {
				newEntries[i] = me
				stats.Reused++
				continue
			} else {
				log.Warn("zoo store object corrupt or missing; retraining entry",
					"name", d.name, "object", me.Object, "err", err)
			}
		}
		if m, ok := imported[d.name]; ok {
			data, err := encodeObject(m)
			if err != nil {
				return nil, nil, fmt.Errorf("zoo: store import %s: %w", d.name, err)
			}
			me := manifestEntry{Name: d.name, Kind: d.kind, Key: d.key,
				Object: objectName(d.name, d.key), SHA256: hashBytes(data)}
			if err := fsatomic.WriteFile(filepath.Join(dir, "objects", me.Object), data); err != nil {
				return nil, nil, fmt.Errorf("zoo: store import %s: %w", d.name, err)
			}
			newEntries[i] = me
			stats.Imported++
			continue
		}
		needTrain[i] = true
	}

	z := &Zoo{Config: cfg}
	z.Config.Obs, z.Config.OnProgress = nil, nil
	z.Pretrained = shells

	// Train the missing pre-trained releases on the worker pool, write
	// their objects, and give every release its handle: resident when
	// just trained, lazy otherwise.
	prog := &progressCounter{fn: cfg.OnProgress}
	toTrain := 0
	for _, need := range needTrain {
		if need {
			toTrain++
		}
	}
	log.Info("zoo store open", "dir", dir,
		"reused", stats.Reused, "imported", stats.Imported, "retrain", toTrain)

	preTrained, err := parallel.MapErrCtx(ctx, cfg.NumPretrained, cfg.Workers, func(ctx context.Context, i int) (*Pretrained, error) {
		if !needTrain[i] {
			return nil, nil
		}
		p := trainPretrained(desired[i].cat, cfg)
		prog.tick("pretrain", toTrain)
		return p, nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("zoo: store build cancelled: %w", err)
	}
	for i, p := range preTrained {
		d := desired[i]
		if p == nil {
			shells[i].handle = lazyHandle(dir, newEntries[i])
			continue
		}
		data, err := encodeObject(p.Model())
		if err != nil {
			return nil, nil, fmt.Errorf("zoo: store write %s: %w", d.name, err)
		}
		me := manifestEntry{Name: d.name, Kind: d.kind, Key: d.key,
			Object: objectName(d.name, d.key), SHA256: hashBytes(data)}
		if err := fsatomic.WriteFile(filepath.Join(dir, "objects", me.Object), data); err != nil {
			return nil, nil, fmt.Errorf("zoo: store write %s: %w", d.name, err)
		}
		newEntries[i] = me
		// Keep the shell (already in z.Pretrained) and hand it the
		// freshly trained tensors.
		shells[i].handle = p.handle
		stats.PretrainedTrained++
	}

	// Fine-tuned victims: same scheme. Training one loads its backbone
	// through the lazy handle if needed.
	ftTrained, err := parallel.MapErrCtx(ctx, cfg.NumFineTuned, cfg.Workers, func(ctx context.Context, i int) (*FineTuned, error) {
		di := cfg.NumPretrained + i
		if !needTrain[di] {
			return nil, nil
		}
		d := desired[di]
		tk, ok := taskByName(tasks, d.taskName)
		if !ok {
			return nil, fmt.Errorf("zoo: store: unknown task %q", d.taskName)
		}
		f := trainFineTuned(shells[d.preIdx], tk, d.name, cfg)
		prog.tick("finetune", toTrain)
		return f, nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("zoo: store build cancelled: %w", err)
	}
	z.FineTuned = make([]*FineTuned, cfg.NumFineTuned)
	for i := 0; i < cfg.NumFineTuned; i++ {
		di := cfg.NumPretrained + i
		d := desired[di]
		if f := ftTrained[i]; f != nil {
			data, err := encodeObject(f.Model())
			if err != nil {
				return nil, nil, fmt.Errorf("zoo: store write %s: %w", d.name, err)
			}
			me := manifestEntry{Name: d.name, Kind: d.kind, Key: d.key,
				Object: objectName(d.name, d.key), SHA256: hashBytes(data)}
			if err := fsatomic.WriteFile(filepath.Join(dir, "objects", me.Object), data); err != nil {
				return nil, nil, fmt.Errorf("zoo: store write %s: %w", d.name, err)
			}
			newEntries[di] = me
			z.FineTuned[i] = f
			stats.FineTunedTrained++
			continue
		}
		tk, ok := taskByName(tasks, d.taskName)
		if !ok {
			return nil, nil, fmt.Errorf("zoo: store: unknown task %q", d.taskName)
		}
		pre := shells[d.preIdx]
		train, dev := fineTuneData(pre, tk, d.name, cfg)
		z.FineTuned[i] = &FineTuned{
			Name: d.name, Pretrained: pre, Task: tk,
			Train: train, Dev: dev,
			handle: lazyHandle(dir, newEntries[di]),
		}
	}

	// Manifest last: a crash before this line leaves the old manifest
	// (next open retrains what this one did), never a store that claims
	// objects it does not have.
	man = &manifest{Version: storeVersion, Config: configKey(cfg), Entries: newEntries}
	if err := writeManifest(dir, man); err != nil {
		return z, stats, fmt.Errorf("zoo: store manifest write: %w", err)
	}
	gcObjects(dir, newEntries, log)

	cfg.Obs.Counter("zoo.models_pretrained").Add(int64(stats.PretrainedTrained))
	cfg.Obs.Counter("zoo.models_finetuned").Add(int64(stats.FineTunedTrained))
	cfg.Obs.Counter("zoo.models_reused").Add(int64(stats.Reused))
	cfg.Obs.Counter("zoo.models_imported").Add(int64(stats.Imported))
	log.Info("zoo store ready", "dir", dir,
		"pretrained_trained", stats.PretrainedTrained,
		"finetuned_trained", stats.FineTunedTrained,
		"reused", stats.Reused, "imported", stats.Imported)
	return z, stats, nil
}

func taskByName(tasks []task.Task, name string) (task.Task, bool) {
	for _, tk := range tasks {
		if tk.Name == name {
			return tk, true
		}
	}
	return task.Task{}, false
}

// gcObjects removes object files the manifest no longer references
// (superseded keys, shrunk populations). Best-effort: a leftover file is
// wasted disk, not corruption.
func gcObjects(dir string, entries []manifestEntry, log *slog.Logger) {
	live := make(map[string]bool, len(entries))
	for _, me := range entries {
		live[me.Object] = true
	}
	objDir := filepath.Join(dir, "objects")
	des, err := os.ReadDir(objDir)
	if err != nil {
		return
	}
	for _, de := range des {
		if de.IsDir() || live[de.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(objDir, de.Name())); err == nil {
			log.Info("zoo store gc", "object", de.Name())
		}
	}
}

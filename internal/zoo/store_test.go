package zoo

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeCfg is the seconds-fast config the store tests build against.
func storeCfg() BuildConfig {
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 3
	cfg.PretrainExamples = 20
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 20
	cfg.FineTuneEpochs = 1
	return cfg
}

func openStore(t *testing.T, cfg BuildConfig, dir string) (*Zoo, *StoreStats) {
	t.Helper()
	z, stats, err := BuildOrOpenStore(context.Background(), cfg, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	return z, stats
}

// A store-grown population must be byte-identical to a monolithic build
// of the same config — the determinism contract that makes single-entry
// retraining safe.
func TestStoreMatchesFullBuild(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	zs, stats := openStore(t, cfg, dir)
	if stats.Trained() != cfg.NumPretrained+cfg.NumFineTuned || stats.Reused != 0 {
		t.Fatalf("fresh store: trained %d, reused %d; want %d/0",
			stats.Trained(), stats.Reused, cfg.NumPretrained+cfg.NumFineTuned)
	}
	zb := MustBuild(cfg)
	if len(zs.Pretrained) != len(zb.Pretrained) || len(zs.FineTuned) != len(zb.FineTuned) {
		t.Fatalf("population %d/%d, want %d/%d",
			len(zs.Pretrained), len(zs.FineTuned), len(zb.Pretrained), len(zb.FineTuned))
	}
	for i, p := range zb.Pretrained {
		q := zs.Pretrained[i]
		if q.Name != p.Name || q.ArchName != p.ArchName || q.Profile.Seed != p.Profile.Seed {
			t.Fatalf("pretrained %d metadata mismatch", i)
		}
		sameWeights(t, p.Name, p.Model(), q.Model())
	}
	for i, f := range zb.FineTuned {
		g := zs.FineTuned[i]
		if g.Name != f.Name || g.Task.Name != f.Task.Name || g.Pretrained.Name != f.Pretrained.Name {
			t.Fatalf("finetuned %d metadata mismatch", i)
		}
		sameWeights(t, f.Name, f.Model(), g.Model())
	}
}

// A warm open trains nothing and serves lazy handles: tensors are not in
// memory until used, and Release drops them for a byte-identical reload.
func TestStoreWarmOpenIsLazy(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	openStore(t, cfg, dir)

	z, stats := openStore(t, cfg, dir)
	if stats.Trained() != 0 || stats.Reused != cfg.NumPretrained+cfg.NumFineTuned {
		t.Fatalf("warm open: trained %d, reused %d; want 0/%d",
			stats.Trained(), stats.Reused, cfg.NumPretrained+cfg.NumFineTuned)
	}
	f := z.FineTuned[0]
	if f.Loaded() {
		t.Fatal("warm-open victim resident before first use")
	}
	before := f.Model().HeadW.V.Data[0]
	if !f.Loaded() {
		t.Fatal("Model() did not load the victim")
	}
	f.Release()
	if f.Loaded() {
		t.Fatal("Release did not drop lazy tensors")
	}
	if got := f.Model().HeadW.V.Data[0]; got != before {
		t.Fatalf("reload after Release changed weights: %v != %v", got, before)
	}
	// Train/Dev regenerate on open, byte-identical to the built split.
	zb := MustBuild(cfg)
	if len(f.Train) != len(zb.FineTuned[0].Train) || len(f.Dev) != len(zb.FineTuned[0].Dev) {
		t.Fatal("regenerated train/dev split has wrong size")
	}
	for i, ex := range zb.FineTuned[0].Dev {
		got := f.Dev[i]
		if got.Label != ex.Label || len(got.Tokens) != len(ex.Tokens) {
			t.Fatal("regenerated dev split differs")
		}
		for j := range ex.Tokens {
			if got.Tokens[j] != ex.Tokens[j] {
				t.Fatal("regenerated dev split differs")
			}
		}
	}
}

// Growing the population retrains only the new entries; every existing
// model is reused (counts are excluded from entry keys on purpose).
func TestStoreIncrementalGrowth(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	openStore(t, cfg, dir)

	grown := cfg
	grown.NumFineTuned = cfg.NumFineTuned + 1
	z, stats := openStore(t, grown, dir)
	if stats.FineTunedTrained != 1 || stats.PretrainedTrained != 0 {
		t.Fatalf("grow by one victim: trained %d pretrained + %d finetuned, want 0+1",
			stats.PretrainedTrained, stats.FineTunedTrained)
	}
	if stats.Reused != cfg.NumPretrained+cfg.NumFineTuned {
		t.Fatalf("grow reused %d, want %d", stats.Reused, cfg.NumPretrained+cfg.NumFineTuned)
	}
	// The grown population is still byte-identical to a full build.
	zb := MustBuild(grown)
	sameWeights(t, "grown victim", zb.FineTuned[cfg.NumFineTuned].Model(), z.FineTuned[cfg.NumFineTuned].Model())
}

// A corrupt (or deleted) object must be detected at open, logged, and
// retrained — alone.
func TestStoreRetrainsCorruptObject(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	z1, _ := openStore(t, cfg, dir)

	// Corrupt one fine-tuned object on disk.
	objs, err := filepath.Glob(filepath.Join(dir, "objects", "*__ft-*"))
	if err != nil || len(objs) == 0 {
		t.Fatalf("no fine-tuned objects found: %v", err)
	}
	if err := os.WriteFile(objs[0], []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	z2, stats := openStore(t, cfg, dir)
	if stats.Trained() != 1 {
		t.Fatalf("corrupt object: retrained %d models, want exactly 1", stats.Trained())
	}
	for i := range z1.FineTuned {
		sameWeights(t, z1.FineTuned[i].Name, z1.FineTuned[i].Model(), z2.FineTuned[i].Model())
	}

	// Deleting an object behaves the same.
	if err := os.Remove(objs[0]); err != nil {
		t.Fatal(err)
	}
	_, stats = openStore(t, cfg, dir)
	if stats.Trained() != 1 {
		t.Fatalf("missing object: retrained %d models, want exactly 1", stats.Trained())
	}
}

// A knob change that alters training inputs invalidates the affected
// keys: a fine-tune budget tweak retrains every victim but reuses every
// backbone.
func TestStoreKnobChangeCascades(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	openStore(t, cfg, dir)

	tweaked := cfg
	tweaked.FineTuneEpochs = cfg.FineTuneEpochs + 1
	_, stats := openStore(t, tweaked, dir)
	if stats.PretrainedTrained != 0 || stats.FineTunedTrained != cfg.NumFineTuned {
		t.Fatalf("finetune knob change: trained %d+%d, want 0+%d",
			stats.PretrainedTrained, stats.FineTunedTrained, cfg.NumFineTuned)
	}
}

// Migration: a fresh store next to a matching monolithic cache imports
// the cache's models instead of retraining them.
func TestStoreImportsLegacyCache(t *testing.T) {
	cfg := storeCfg()
	tmp := t.TempDir()
	cache := filepath.Join(tmp, "zoo.gob.gz")
	zb, err := BuildOrLoad(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(tmp, "store")
	z, stats, err := BuildOrOpenStore(context.Background(), cfg, dir, cache)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.NumPretrained + cfg.NumFineTuned
	if stats.Imported != total || stats.Trained() != 0 {
		t.Fatalf("import: imported %d, trained %d; want %d/0", stats.Imported, stats.Trained(), total)
	}
	for i := range zb.FineTuned {
		sameWeights(t, zb.FineTuned[i].Name, zb.FineTuned[i].Model(), z.FineTuned[i].Model())
	}
	// The store is now self-sufficient: a warm open without the cache
	// reuses everything.
	_, stats = openStore(t, cfg, dir)
	if stats.Reused != total {
		t.Fatalf("post-import open reused %d, want %d", stats.Reused, total)
	}

	// A cache built for a different config must NOT be imported.
	other := cfg
	other.Seed = cfg.Seed + 1
	dir2 := filepath.Join(tmp, "store2")
	_, stats, err = BuildOrOpenStore(context.Background(), other, dir2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imported != 0 || stats.Trained() != total {
		t.Fatalf("mismatched cache: imported %d, trained %d; want 0/%d", stats.Imported, stats.Trained(), total)
	}
}

// A corrupt manifest downgrades to a warning + full rebuild, and the
// rebuilt manifest GCs objects its keys no longer reference.
func TestStoreRebuildsOnCorruptManifest(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	openStore(t, cfg, dir)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats := openStore(t, cfg, dir)
	if stats.Trained() != cfg.NumPretrained+cfg.NumFineTuned {
		t.Fatalf("corrupt manifest: trained %d, want full rebuild of %d",
			stats.Trained(), cfg.NumPretrained+cfg.NumFineTuned)
	}
}

// Orphaned objects (superseded keys) are garbage-collected once the new
// manifest is durable.
func TestStoreGCsOrphanObjects(t *testing.T) {
	cfg := storeCfg()
	dir := t.TempDir()
	openStore(t, cfg, dir)
	tweaked := cfg
	tweaked.Seed = cfg.Seed + 1 // every key moves
	openStore(t, tweaked, dir)

	des, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(des), cfg.NumPretrained+cfg.NumFineTuned; got != want {
		t.Fatalf("store holds %d objects after key change, want %d (orphans GCed)", got, want)
	}
}

// The store build is worker-count invariant, like the monolithic build:
// any parallelism writes byte-identical manifests and objects.
func TestStoreWorkerCountInvariance(t *testing.T) {
	cfg := storeCfg()
	d1, d4 := t.TempDir(), t.TempDir()
	c1, c4 := cfg, cfg
	c1.Workers, c4.Workers = 1, 4
	openStore(t, c1, d1)
	openStore(t, c4, d4)

	m1, err := os.ReadFile(filepath.Join(d1, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := os.ReadFile(filepath.Join(d4, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m4) {
		t.Fatal("manifests differ across worker counts")
	}
	des, err := os.ReadDir(filepath.Join(d1, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		b1, err := os.ReadFile(filepath.Join(d1, "objects", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b4, err := os.ReadFile(filepath.Join(d4, "objects", de.Name()))
		if err != nil {
			t.Fatalf("object %s missing at workers=4: %v", de.Name(), err)
		}
		if !strings.EqualFold(hashBytes(b1), hashBytes(b4)) {
			t.Fatalf("object %s differs across worker counts", de.Name())
		}
	}
}

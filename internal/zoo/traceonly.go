package zoo

// TraceOnlyBuildConfig returns a build whose models receive minimal
// training. Kernel-trace fingerprints depend only on each release's
// architecture and execution profile — not on weight values — so tests
// and examples that exercise the trace/fingerprint pipeline can skip the
// expensive pre-training and fine-tuning.
func TraceOnlyBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.NumPretrained = 12
	cfg.NumFineTuned = 24
	cfg.PretrainExamples = 8
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 10
	cfg.FineTuneEpochs = 1
	cfg.ArchFilter = []string{"tiny", "mini", "small"}
	return cfg
}

// TinyBuildConfig is the smallest end-to-end population that still
// exercises every attack stage: a handful of tiny-architecture releases
// with a real (if brief) pre-train/fine-tune budget, so extraction and
// its cost accounting remain meaningful. It backs `make metrics-smoke`
// and the `-scale tiny` CLI option.
func TinyBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 60
	cfg.PretrainEpochs = 4
	cfg.FineTuneExamples = 40
	cfg.FineTuneEpochs = 3
	cfg.ArchFilter = []string{"tiny"}
	return cfg
}

package zoo

// TraceOnlyBuildConfig returns a build whose models receive minimal
// training. Kernel-trace fingerprints depend only on each release's
// architecture and execution profile — not on weight values — so tests
// and examples that exercise the trace/fingerprint pipeline can skip the
// expensive pre-training and fine-tuning.
func TraceOnlyBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.NumPretrained = 12
	cfg.NumFineTuned = 24
	cfg.PretrainExamples = 8
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 10
	cfg.FineTuneEpochs = 1
	cfg.ArchFilter = []string{"tiny", "mini", "small"}
	return cfg
}

package zoo

import (
	"context"
	"fmt"
	"sync"

	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
	"decepticon/internal/task"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// Pretrained is one pre-trained model release.
type Pretrained struct {
	Name     string
	Arch     transformer.Config
	ArchName string
	Source   string
	Language string
	Cased    bool
	Vocab    *tokenizer.Vocab
	Model    *transformer.Model
	Profile  gpusim.Profile
}

// Trace simulates one kernel-trace measurement of the model.
func (p *Pretrained) Trace(opt gpusim.Options) *gpusim.Trace {
	t := gpusim.SimulateTransformer(p.Arch, nil, p.Profile, opt)
	t.Model = p.Name
	return t
}

// FineTuned is a model fine-tuned from a pre-trained release on a
// downstream task. It is the black-box victim population.
type FineTuned struct {
	Name       string
	Pretrained *Pretrained
	Task       task.Task
	Model      *transformer.Model
	Train, Dev []transformer.Example
}

// Trace simulates one kernel-trace measurement of the fine-tuned model.
// The fingerprint is inherited from the pre-trained release: only the
// task-head kernels at the trace tail differ.
func (f *FineTuned) Trace(opt gpusim.Options) *gpusim.Trace {
	activeHeads := make([]int, f.Model.Layers)
	for l, b := range f.Model.Blocks {
		n := 0
		for _, pruned := range b.HeadPruned {
			if !pruned {
				n++
			}
		}
		activeHeads[l] = n
	}
	t := gpusim.SimulateTransformer(f.Model.Config, activeHeads, f.Pretrained.Profile, opt)
	t.Model = f.Name
	return t
}

// ClassifyText answers a black-box text query: the victim tokenizes the
// text with its own (inherited) vocabulary and returns the predicted label
// and class probabilities. This is the only interface the attacker's
// query-output fingerprint uses.
func (f *FineTuned) ClassifyText(text string) (label int, probs []float32) {
	tokens := f.Pretrained.Vocab.Tokenize(text, f.Model.MaxSeq)
	return f.Model.Predict(tokens), f.Model.Probs(tokens)
}

// Zoo is the model population.
type Zoo struct {
	Pretrained []*Pretrained
	FineTuned  []*FineTuned
	// Config is the build configuration that produced this population
	// (instrumentation fields zeroed on a cache round-trip). Save embeds
	// its population-determining fields in the cache file so BuildOrLoad
	// can refuse to serve a cache built for a different configuration.
	Config BuildConfig
}

// BuildConfig controls zoo construction. The zero value is not valid; use
// DefaultBuildConfig or SmallBuildConfig.
type BuildConfig struct {
	NumPretrained    int
	NumFineTuned     int
	PretrainExamples int
	PretrainEpochs   int
	FineTuneExamples int
	FineTuneEpochs   int
	// FineTuneLR / FineTuneHeadLR / FineTuneDecay mirror standard
	// discriminative fine-tuning; the defaults reproduce the paper's
	// weight-gap structure (small backbone deltas, U-shaped vs. weight
	// value, large head deltas).
	FineTuneLR     float64
	FineTuneHeadLR float64
	FineTuneDecay  float64
	Seed           uint64
	// ArchFilter, when non-empty, restricts the catalog to the named
	// architectures (transformer.Family keys) — used by tests and quick
	// examples to avoid training large models.
	ArchFilter []string
	OnProgress func(stage string, done, total int) // optional progress hook
	// Workers bounds the number of models trained concurrently; <= 0
	// selects runtime.GOMAXPROCS(0). Every model derives its own seeds
	// from its name (rng.Seed("pretrain-train", name), ...), so the built
	// population is byte-for-byte identical for any worker count.
	Workers int
	// Obs, when set, receives the build's accounting: zoo.build_seconds
	// wall time and zoo.models_pretrained / zoo.models_finetuned counters.
	Obs *obs.Registry
}

// DefaultBuildConfig reproduces the paper's population: 70 pre-trained and
// 170 fine-tuned models.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		NumPretrained:    70,
		NumFineTuned:     170,
		PretrainExamples: 300,
		PretrainEpochs:   14,
		FineTuneExamples: 150,
		FineTuneEpochs:   8,
		FineTuneLR:       3e-5,
		FineTuneHeadLR:   3e-2,
		FineTuneDecay:    2.0,
		Seed:             1,
	}
}

// SmallBuildConfig is a fast population for tests and examples: it keeps
// the catalog's structure (an ambiguity cluster, several sources and
// frameworks) while restricting to the small architectures and a reduced
// training budget.
func SmallBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.NumPretrained = 12
	cfg.NumFineTuned = 20
	cfg.PretrainExamples = 240
	cfg.PretrainEpochs = 10
	cfg.FineTuneExamples = 120
	cfg.FineTuneEpochs = 6
	cfg.ArchFilter = []string{"tiny", "mini", "small"}
	return cfg
}

// profileSeed derives the release-profile seed from a profile key.
func profileSeed(key string) uint64 { return rng.Seed("profile", key) }

// progressCounter serializes BuildConfig.OnProgress callbacks behind a
// mutex and reports its own monotonically increasing completion count, so
// the hook sees done = 1, 2, ..., total in order no matter which worker
// finishes which model first.
type progressCounter struct {
	mu   sync.Mutex
	done int
	fn   func(stage string, done, total int)
}

func (p *progressCounter) tick(stage string, total int) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(stage, p.done, total)
	p.mu.Unlock()
}

// Build constructs the zoo deterministically. Pre-trained models are
// initialized with a trained-looking weight distribution and briefly
// trained on a generic (non-downstream) objective; fine-tuned models copy
// a pre-trained backbone, attach a fresh task head, and train on a
// downstream task. No (pre-trained, fine-tuned) pair shares a task, as in
// the paper's methodology (§7.1).
//
// A config the catalog cannot satisfy is caller-facing input, so it is
// reported as an error instead of panicking out of a campaign.
func Build(cfg BuildConfig) (*Zoo, error) {
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build with cooperative cancellation: models are
// independent work items, so a cancelled ctx stops new models from
// starting (in-flight ones finish — one model's training is the
// cancellation granularity) and the build returns ctx's error instead of
// a partial population.
func BuildContext(ctx context.Context, cfg BuildConfig) (*Zoo, error) {
	defer cfg.Obs.StartSpan("zoo.build_seconds").End()
	if cfg.NumPretrained <= 0 || cfg.NumFineTuned <= 0 {
		return nil, fmt.Errorf("zoo: empty build configuration (%d pretrained, %d fine-tuned); use DefaultBuildConfig",
			cfg.NumPretrained, cfg.NumFineTuned)
	}
	entries := catalog()
	if len(cfg.ArchFilter) > 0 {
		allowed := make(map[string]bool, len(cfg.ArchFilter))
		for _, a := range cfg.ArchFilter {
			allowed[a] = true
		}
		var kept []entry
		for _, e := range entries {
			if allowed[e.arch] {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if cfg.NumPretrained > len(entries) {
		return nil, fmt.Errorf("zoo: catalog has %d matching releases, %d requested", len(entries), cfg.NumPretrained)
	}
	z := &Zoo{Config: cfg}
	// The recorded config describes the population, not this build's
	// instrumentation: drop the hooks so a Zoo does not retain its
	// builder's registry or progress callback.
	z.Config.Obs, z.Config.OnProgress = nil, nil

	// Trace lane: the zoo build is one span on the pipeline track, plus
	// one track per model (pid PidZoo) whose clock advances by training
	// work units (epochs × examples) — all simulated time, so the trace
	// file is identical for any worker count.
	pipe := cfg.Obs.Tracer().Track(obs.PidPipeline, 0, "pipeline")
	buildSpan := pipe.Begin("zoo.build",
		obs.A("pretrained", cfg.NumPretrained),
		obs.A("finetuned", cfg.NumFineTuned))
	defer buildSpan.End()
	defer pipe.Advance(int64(cfg.NumPretrained*cfg.PretrainEpochs*cfg.PretrainExamples +
		cfg.NumFineTuned*cfg.FineTuneEpochs*cfg.FineTuneExamples))
	log := cfg.Obs.Log()
	log.Info("zoo build start",
		"pretrained", cfg.NumPretrained, "finetuned", cfg.NumFineTuned,
		"workers", cfg.Workers)

	// Each pre-trained release derives every seed from its own name, so
	// releases are independent items: train them on the worker pool. The
	// result slice is indexed by catalog position, which keeps the
	// population order (and therefore every downstream classifier label
	// index) identical to a serial build.
	selected := entries[:cfg.NumPretrained]
	preProg := &progressCounter{fn: cfg.OnProgress}
	pre, err := parallel.MapErrCtx(ctx, len(selected), cfg.Workers, func(ctx context.Context, i int) (*Pretrained, error) {
		e := selected[i]
		arch := archFor(e)
		name := e.name()
		mt := cfg.Obs.Tracer().Track(obs.PidZoo, int64(i), name)
		sp := mt.Begin("pretrain", obs.A("arch", e.arch))
		defer func() {
			mt.Advance(int64(cfg.PretrainEpochs * cfg.PretrainExamples))
			sp.End()
		}()
		vocabSeed := rng.Seed("corpus", e.corpus, e.language, fmt.Sprint(e.cased)) ^ cfg.Seed
		vocab := tokenizer.NewVocab(name, e.language, e.cased, arch.Vocab, vocabSeed)

		// Generic pre-training: the MLM-analog token-recall objective
		// (task.GenerateMLM). The label space is the whole vocabulary, so
		// the backbone learns a transferable bag-of-tokens encoding —
		// data differs per release (corpus seed), so weights diverge
		// across releases.
		arch = arch.WithLabels(arch.Vocab)
		model := transformer.NewWithInit(arch, rng.Seed("pretrain-init", name)^cfg.Seed, transformer.TrainedInit)
		data := task.GenerateMLM(arch.Vocab, 12, cfg.PretrainExamples, rng.Seed("pretrain-data", name)^cfg.Seed)
		lr, warmup := 3e-3, 0
		if arch.Layers >= 10 {
			// Deeper stacks need a gentler schedule to converge.
			lr, warmup = 1.5e-3, 120
		}
		model.Train(data, transformer.TrainConfig{
			Epochs: cfg.PretrainEpochs, BatchSize: 8,
			LR: lr, HeadLR: 6e-3, WeightDecay: 0.02, WarmupSteps: warmup,
			Seed: rng.Seed("pretrain-train", name) ^ cfg.Seed,
		})

		p := &Pretrained{
			Name: name, Arch: arch, ArchName: e.arch,
			Source: e.source, Language: e.language, Cased: e.cased,
			Vocab: vocab, Model: model, Profile: profileFor(e),
		}
		preProg.tick("pretrain", cfg.NumPretrained)
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("zoo: build cancelled: %w", err)
	}
	z.Pretrained = pre

	// Fine-tuned victims only read their backbone's weights
	// (transformer.FineTuneFrom copies them into a fresh model), so they
	// too are independent once the pre-trained phase has joined.
	tasks := task.GLUEAnalogs()
	tasks = append(tasks, task.QAAnalog())
	ftProg := &progressCounter{fn: cfg.OnProgress}
	ft, err := parallel.MapErrCtx(ctx, cfg.NumFineTuned, cfg.Workers, func(ctx context.Context, i int) (*FineTuned, error) {
		pre := z.Pretrained[i%len(z.Pretrained)]
		tk := tasks[(i/len(z.Pretrained))%len(tasks)]
		name := fmt.Sprintf("%s__ft-%s-%d", pre.Name, tk.Name, i)
		mt := cfg.Obs.Tracer().Track(obs.PidZoo, int64(cfg.NumPretrained+i), name)
		sp := mt.Begin("finetune", obs.A("task", tk.Name))
		defer func() {
			mt.Advance(int64(cfg.FineTuneEpochs * cfg.FineTuneExamples))
			sp.End()
		}()
		data := tk.Generate(pre.Arch.Vocab, cfg.FineTuneExamples, rng.Seed("ft-data", name)^cfg.Seed)
		train, dev := task.Split(data, 0.8)
		model := transformer.FineTuneFrom(pre.Model, tk.Labels, train, transformer.TrainConfig{
			Epochs: cfg.FineTuneEpochs, BatchSize: 4,
			LR: cfg.FineTuneLR, HeadLR: cfg.FineTuneHeadLR,
			WeightDecay: cfg.FineTuneDecay,
			Seed:        rng.Seed("ft-train", name) ^ cfg.Seed,
		}, rng.Seed("ft-head", name)^cfg.Seed)
		f := &FineTuned{
			Name: name, Pretrained: pre, Task: tk, Model: model,
			Train: train, Dev: dev,
		}
		ftProg.tick("finetune", cfg.NumFineTuned)
		return f, nil
	})
	if err != nil {
		return nil, fmt.Errorf("zoo: build cancelled: %w", err)
	}
	z.FineTuned = ft
	cfg.Obs.Counter("zoo.models_pretrained").Add(int64(len(z.Pretrained)))
	cfg.Obs.Counter("zoo.models_finetuned").Add(int64(len(z.FineTuned)))
	log.Info("zoo build done",
		"pretrained", len(z.Pretrained), "finetuned", len(z.FineTuned))
	return z, nil
}

// MustBuild is Build for contexts where a bad config is a programmer
// error (tests, examples, benchmarks): it panics instead of returning
// the error.
func MustBuild(cfg BuildConfig) *Zoo {
	z, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return z
}

// PretrainedByName returns the named pre-trained model, or nil.
func (z *Zoo) PretrainedByName(name string) *Pretrained {
	for _, p := range z.Pretrained {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// FineTunedByName returns the named fine-tuned model, or nil.
func (z *Zoo) FineTunedByName(name string) *FineTuned {
	for _, f := range z.FineTuned {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AmbiguousWith returns the pre-trained models whose execution profile is
// identical to p's (including p itself) — the candidate set the
// query-output detector has to separate.
func (z *Zoo) AmbiguousWith(p *Pretrained) []*Pretrained {
	var out []*Pretrained
	for _, q := range z.Pretrained {
		if q.Profile.Seed == p.Profile.Seed && q.ArchName == p.ArchName {
			out = append(out, q)
		}
	}
	return out
}

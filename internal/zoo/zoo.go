package zoo

import (
	"context"
	"fmt"
	"sync"

	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
	"decepticon/internal/task"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// Pretrained is one pre-trained model release. The tensors live behind a
// handle: resident when the model was just trained or decoded from the
// monolithic cache, lazy when it is backed by a zoo-store object file.
// Everything else (architecture, vocabulary, execution profile) is always
// in memory — identification-side code never needs to touch the weights.
type Pretrained struct {
	Name     string
	Arch     transformer.Config
	ArchName string
	Source   string
	Language string
	Cased    bool
	Vocab    *tokenizer.Vocab
	Profile  gpusim.Profile

	handle *transformer.Handle
}

// Model returns the release's weights, loading them from the store on
// first use when the release is lazily backed.
func (p *Pretrained) Model() *transformer.Model { return p.handle.Get() }

// Release drops store-backed tensors from memory; the next Model call
// reloads them byte-identically. No-op for resident models.
func (p *Pretrained) Release() { p.handle.Release() }

// Loaded reports whether the tensors are currently in memory.
func (p *Pretrained) Loaded() bool { return p.handle.Loaded() }

// Trace simulates one kernel-trace measurement of the model.
func (p *Pretrained) Trace(opt gpusim.Options) *gpusim.Trace {
	t := gpusim.SimulateTransformer(p.Arch, nil, p.Profile, opt)
	t.Model = p.Name
	return t
}

// FineTuned is a model fine-tuned from a pre-trained release on a
// downstream task. It is the black-box victim population.
type FineTuned struct {
	Name       string
	Pretrained *Pretrained
	Task       task.Task
	Train, Dev []transformer.Example

	handle *transformer.Handle
}

// Model returns the victim's weights, loading them from the store on
// first use when the victim is lazily backed.
func (f *FineTuned) Model() *transformer.Model { return f.handle.Get() }

// Release drops store-backed tensors from memory; the next Model call
// reloads them byte-identically. No-op for resident models.
func (f *FineTuned) Release() { f.handle.Release() }

// Loaded reports whether the tensors are currently in memory.
func (f *FineTuned) Loaded() bool { return f.handle.Loaded() }

// Trace simulates one kernel-trace measurement of the fine-tuned model.
// The fingerprint is inherited from the pre-trained release: only the
// task-head kernels at the trace tail differ.
func (f *FineTuned) Trace(opt gpusim.Options) *gpusim.Trace {
	m := f.Model()
	activeHeads := make([]int, m.Layers)
	for l, b := range m.Blocks {
		n := 0
		for _, pruned := range b.HeadPruned {
			if !pruned {
				n++
			}
		}
		activeHeads[l] = n
	}
	t := gpusim.SimulateTransformer(m.Config, activeHeads, f.Pretrained.Profile, opt)
	t.Model = f.Name
	return t
}

// ClassifyText answers a black-box text query: the victim tokenizes the
// text with its own (inherited) vocabulary and returns the predicted label
// and class probabilities. This is the only interface the attacker's
// query-output fingerprint uses.
func (f *FineTuned) ClassifyText(text string) (label int, probs []float32) {
	m := f.Model()
	tokens := f.Pretrained.Vocab.Tokenize(text, m.MaxSeq)
	return m.Predict(tokens), m.Probs(tokens)
}

// Zoo is the model population.
type Zoo struct {
	Pretrained []*Pretrained
	FineTuned  []*FineTuned
	// Config is the build configuration that produced this population
	// (instrumentation fields zeroed on a cache round-trip). Save embeds
	// its population-determining fields in the cache file so BuildOrLoad
	// can refuse to serve a cache built for a different configuration.
	Config BuildConfig

	// Name lookups are hot in service victim resolution (every campaign
	// submit resolves its victims by name), so the first lookup builds a
	// map index over both populations instead of scanning linearly.
	indexOnce sync.Once
	preByName map[string]*Pretrained
	ftByName  map[string]*FineTuned
}

// BuildConfig controls zoo construction. The zero value is not valid; use
// DefaultBuildConfig or SmallBuildConfig.
type BuildConfig struct {
	NumPretrained    int
	NumFineTuned     int
	PretrainExamples int
	PretrainEpochs   int
	FineTuneExamples int
	FineTuneEpochs   int
	// FineTuneLR / FineTuneHeadLR / FineTuneDecay mirror standard
	// discriminative fine-tuning; the defaults reproduce the paper's
	// weight-gap structure (small backbone deltas, U-shaped vs. weight
	// value, large head deltas).
	FineTuneLR     float64
	FineTuneHeadLR float64
	FineTuneDecay  float64
	Seed           uint64
	// ArchFilter, when non-empty, restricts the catalog to the named
	// architectures (transformer.Family keys) — used by tests and quick
	// examples to avoid training large models.
	ArchFilter []string
	OnProgress func(stage string, done, total int) // optional progress hook
	// Workers bounds the number of models trained concurrently; <= 0
	// selects runtime.GOMAXPROCS(0). Every model derives its own seeds
	// from its name (rng.Seed("pretrain-train", name), ...), so the built
	// population is byte-for-byte identical for any worker count.
	Workers int
	// Obs, when set, receives the build's accounting: zoo.build_seconds
	// wall time and zoo.models_pretrained / zoo.models_finetuned counters.
	Obs *obs.Registry
}

// DefaultBuildConfig reproduces the paper's population: 70 pre-trained and
// 170 fine-tuned models.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		NumPretrained:    70,
		NumFineTuned:     170,
		PretrainExamples: 300,
		PretrainEpochs:   14,
		FineTuneExamples: 150,
		FineTuneEpochs:   8,
		FineTuneLR:       3e-5,
		FineTuneHeadLR:   3e-2,
		FineTuneDecay:    2.0,
		Seed:             1,
	}
}

// SmallBuildConfig is a fast population for tests and examples: it keeps
// the catalog's structure (an ambiguity cluster, several sources and
// frameworks) while restricting to the small architectures and a reduced
// training budget.
func SmallBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.NumPretrained = 12
	cfg.NumFineTuned = 20
	cfg.PretrainExamples = 240
	cfg.PretrainEpochs = 10
	cfg.FineTuneExamples = 120
	cfg.FineTuneEpochs = 6
	cfg.ArchFilter = []string{"tiny", "mini", "small"}
	return cfg
}

// profileSeed derives the release-profile seed from a profile key.
func profileSeed(key string) uint64 { return rng.Seed("profile", key) }

// progressCounter serializes BuildConfig.OnProgress callbacks behind a
// mutex and reports its own monotonically increasing completion count, so
// the hook sees done = 1, 2, ..., total in order no matter which worker
// finishes which model first.
type progressCounter struct {
	mu   sync.Mutex
	done int
	fn   func(stage string, done, total int)
}

func (p *progressCounter) tick(stage string, total int) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(stage, p.done, total)
	p.mu.Unlock()
}

// selectedEntries filters the catalog through cfg.ArchFilter and checks
// the requested population fits; the returned slice is the pre-trained
// half of the desired population, in catalog (= label) order.
func selectedEntries(cfg BuildConfig) ([]entry, error) {
	entries := catalog()
	if len(cfg.ArchFilter) > 0 {
		allowed := make(map[string]bool, len(cfg.ArchFilter))
		for _, a := range cfg.ArchFilter {
			allowed[a] = true
		}
		var kept []entry
		for _, e := range entries {
			if allowed[e.arch] {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if cfg.NumPretrained > len(entries) {
		return nil, fmt.Errorf("zoo: catalog has %d matching releases, %d requested", len(entries), cfg.NumPretrained)
	}
	return entries[:cfg.NumPretrained], nil
}

// pretrainedVocabSeed derives the vocabulary seed for catalog entry e:
// releases sharing a corpus (same language/casing lineage) share
// tokenizer statistics, as real checkpoint families do.
func pretrainedVocabSeed(e entry, cfg BuildConfig) uint64 {
	return rng.Seed("corpus", e.corpus, e.language, fmt.Sprint(e.cased)) ^ cfg.Seed
}

// pretrainedShell builds the weight-free half of a release — name,
// architecture, vocabulary, execution profile — exactly as trainPretrained
// would. The store's open path uses it to materialize lazy releases
// without touching tensors.
func pretrainedShell(e entry, cfg BuildConfig) *Pretrained {
	arch := archFor(e)
	name := e.name()
	vocab := tokenizer.NewVocab(name, e.language, e.cased, arch.Vocab, pretrainedVocabSeed(e, cfg))
	arch = arch.WithLabels(arch.Vocab)
	return &Pretrained{
		Name: name, Arch: arch, ArchName: e.arch,
		Source: e.source, Language: e.language, Cased: e.cased,
		Vocab: vocab, Profile: profileFor(e),
	}
}

// trainPretrained trains catalog entry e from scratch. Every seed is
// derived from the release name and cfg.Seed, so the result is identical
// whether it is produced by a full build, a store rebuild of this single
// entry, or any worker count.
func trainPretrained(e entry, cfg BuildConfig) *Pretrained {
	p := pretrainedShell(e, cfg)
	// Generic pre-training: the MLM-analog token-recall objective
	// (task.GenerateMLM). The label space is the whole vocabulary, so
	// the backbone learns a transferable bag-of-tokens encoding —
	// data differs per release (corpus seed), so weights diverge
	// across releases.
	model := transformer.NewWithInit(p.Arch, rng.Seed("pretrain-init", p.Name)^cfg.Seed, transformer.TrainedInit)
	data := task.GenerateMLM(p.Arch.Vocab, 12, cfg.PretrainExamples, rng.Seed("pretrain-data", p.Name)^cfg.Seed)
	lr, warmup := 3e-3, 0
	if p.Arch.Layers >= 10 {
		// Deeper stacks need a gentler schedule to converge.
		lr, warmup = 1.5e-3, 120
	}
	model.Train(data, transformer.TrainConfig{
		Epochs: cfg.PretrainEpochs, BatchSize: 8,
		LR: lr, HeadLR: 6e-3, WeightDecay: 0.02, WarmupSteps: warmup,
		Seed: rng.Seed("pretrain-train", p.Name) ^ cfg.Seed,
	})
	p.handle = transformer.Resident(model)
	return p
}

// fineTunedTasks is the downstream-task rotation (GLUE analogs + QA).
func fineTunedTasks() []task.Task {
	tasks := task.GLUEAnalogs()
	return append(tasks, task.QAAnalog())
}

// fineTunedSpec maps victim index i onto its backbone, task, and name —
// the population schedule shared by the full build and the store.
func fineTunedSpec(pres []*Pretrained, tasks []task.Task, i int) (pre *Pretrained, tk task.Task, name string) {
	pre = pres[i%len(pres)]
	tk = tasks[(i/len(pres))%len(tasks)]
	return pre, tk, fmt.Sprintf("%s__ft-%s-%d", pre.Name, tk.Name, i)
}

// fineTuneData regenerates victim name's train/dev split. The split is a
// pure function of (backbone vocabulary size, name, cfg), which is why
// caches and stores do not persist it.
func fineTuneData(pre *Pretrained, tk task.Task, name string, cfg BuildConfig) (train, dev []transformer.Example) {
	data := tk.Generate(pre.Arch.Vocab, cfg.FineTuneExamples, rng.Seed("ft-data", name)^cfg.Seed)
	return task.Split(data, 0.8)
}

// trainFineTuned trains victim index i against backbone pre. Like
// trainPretrained it is deterministic per name, so single-entry store
// rebuilds reproduce the full build byte-for-byte.
func trainFineTuned(pre *Pretrained, tk task.Task, name string, cfg BuildConfig) *FineTuned {
	train, dev := fineTuneData(pre, tk, name, cfg)
	model := transformer.FineTuneFrom(pre.Model(), tk.Labels, train, transformer.TrainConfig{
		Epochs: cfg.FineTuneEpochs, BatchSize: 4,
		LR: cfg.FineTuneLR, HeadLR: cfg.FineTuneHeadLR,
		WeightDecay: cfg.FineTuneDecay,
		Seed:        rng.Seed("ft-train", name) ^ cfg.Seed,
	}, rng.Seed("ft-head", name)^cfg.Seed)
	return &FineTuned{
		Name: name, Pretrained: pre, Task: tk,
		Train: train, Dev: dev,
		handle: transformer.Resident(model),
	}
}

// Build constructs the zoo deterministically. Pre-trained models are
// initialized with a trained-looking weight distribution and briefly
// trained on a generic (non-downstream) objective; fine-tuned models copy
// a pre-trained backbone, attach a fresh task head, and train on a
// downstream task. No (pre-trained, fine-tuned) pair shares a task, as in
// the paper's methodology (§7.1).
//
// A config the catalog cannot satisfy is caller-facing input, so it is
// reported as an error instead of panicking out of a campaign.
func Build(cfg BuildConfig) (*Zoo, error) {
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build with cooperative cancellation: models are
// independent work items, so a cancelled ctx stops new models from
// starting (in-flight ones finish — one model's training is the
// cancellation granularity) and the build returns ctx's error instead of
// a partial population.
func BuildContext(ctx context.Context, cfg BuildConfig) (*Zoo, error) {
	defer cfg.Obs.StartSpan("zoo.build_seconds").End()
	if cfg.NumPretrained <= 0 || cfg.NumFineTuned <= 0 {
		return nil, fmt.Errorf("zoo: empty build configuration (%d pretrained, %d fine-tuned); use DefaultBuildConfig",
			cfg.NumPretrained, cfg.NumFineTuned)
	}
	selected, err := selectedEntries(cfg)
	if err != nil {
		return nil, err
	}
	z := &Zoo{Config: cfg}
	// The recorded config describes the population, not this build's
	// instrumentation: drop the hooks so a Zoo does not retain its
	// builder's registry or progress callback.
	z.Config.Obs, z.Config.OnProgress = nil, nil

	// Trace lane: the zoo build is one span on the pipeline track, plus
	// one track per model (pid PidZoo) whose clock advances by training
	// work units (epochs × examples) — all simulated time, so the trace
	// file is identical for any worker count.
	pipe := cfg.Obs.Tracer().Track(obs.PidPipeline, 0, "pipeline")
	buildSpan := pipe.Begin("zoo.build",
		obs.A("pretrained", cfg.NumPretrained),
		obs.A("finetuned", cfg.NumFineTuned))
	defer buildSpan.End()
	defer pipe.Advance(int64(cfg.NumPretrained*cfg.PretrainEpochs*cfg.PretrainExamples +
		cfg.NumFineTuned*cfg.FineTuneEpochs*cfg.FineTuneExamples))
	log := cfg.Obs.Log()
	log.Info("zoo build start",
		"pretrained", cfg.NumPretrained, "finetuned", cfg.NumFineTuned,
		"workers", cfg.Workers)

	// Each pre-trained release derives every seed from its own name, so
	// releases are independent items: train them on the worker pool. The
	// result slice is indexed by catalog position, which keeps the
	// population order (and therefore every downstream classifier label
	// index) identical to a serial build.
	preProg := &progressCounter{fn: cfg.OnProgress}
	pre, err := parallel.MapErrCtx(ctx, len(selected), cfg.Workers, func(ctx context.Context, i int) (*Pretrained, error) {
		e := selected[i]
		mt := cfg.Obs.Tracer().Track(obs.PidZoo, int64(i), e.name())
		sp := mt.Begin("pretrain", obs.A("arch", e.arch))
		defer func() {
			mt.Advance(int64(cfg.PretrainEpochs * cfg.PretrainExamples))
			sp.End()
		}()
		p := trainPretrained(e, cfg)
		preProg.tick("pretrain", cfg.NumPretrained)
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("zoo: build cancelled: %w", err)
	}
	z.Pretrained = pre

	// Fine-tuned victims only read their backbone's weights
	// (transformer.FineTuneFrom copies them into a fresh model), so they
	// too are independent once the pre-trained phase has joined.
	tasks := fineTunedTasks()
	ftProg := &progressCounter{fn: cfg.OnProgress}
	ft, err := parallel.MapErrCtx(ctx, cfg.NumFineTuned, cfg.Workers, func(ctx context.Context, i int) (*FineTuned, error) {
		pre, tk, name := fineTunedSpec(z.Pretrained, tasks, i)
		mt := cfg.Obs.Tracer().Track(obs.PidZoo, int64(cfg.NumPretrained+i), name)
		sp := mt.Begin("finetune", obs.A("task", tk.Name))
		defer func() {
			mt.Advance(int64(cfg.FineTuneEpochs * cfg.FineTuneExamples))
			sp.End()
		}()
		f := trainFineTuned(pre, tk, name, cfg)
		ftProg.tick("finetune", cfg.NumFineTuned)
		return f, nil
	})
	if err != nil {
		return nil, fmt.Errorf("zoo: build cancelled: %w", err)
	}
	z.FineTuned = ft
	cfg.Obs.Counter("zoo.models_pretrained").Add(int64(len(z.Pretrained)))
	cfg.Obs.Counter("zoo.models_finetuned").Add(int64(len(z.FineTuned)))
	log.Info("zoo build done",
		"pretrained", len(z.Pretrained), "finetuned", len(z.FineTuned))
	return z, nil
}

// MustBuild is Build for contexts where a bad config is a programmer
// error (tests, examples, benchmarks): it panics instead of returning
// the error.
func MustBuild(cfg BuildConfig) *Zoo {
	z, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return z
}

// buildIndex populates the name maps once, on first lookup.
func (z *Zoo) buildIndex() {
	z.indexOnce.Do(func() {
		z.preByName = make(map[string]*Pretrained, len(z.Pretrained))
		for _, p := range z.Pretrained {
			z.preByName[p.Name] = p
		}
		z.ftByName = make(map[string]*FineTuned, len(z.FineTuned))
		for _, f := range z.FineTuned {
			z.ftByName[f.Name] = f
		}
	})
}

// PretrainedByName returns the named pre-trained model, or nil.
func (z *Zoo) PretrainedByName(name string) *Pretrained {
	z.buildIndex()
	return z.preByName[name]
}

// FineTunedByName returns the named fine-tuned model, or nil.
func (z *Zoo) FineTunedByName(name string) *FineTuned {
	z.buildIndex()
	return z.ftByName[name]
}

// AmbiguousWith returns the pre-trained models whose execution profile is
// identical to p's (including p itself) — the candidate set the
// query-output detector has to separate.
func (z *Zoo) AmbiguousWith(p *Pretrained) []*Pretrained {
	var out []*Pretrained
	for _, q := range z.Pretrained {
		if q.Profile.Seed == p.Profile.Seed && q.ArchName == p.ArchName {
			out = append(out, q)
		}
	}
	return out
}

package zoo

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"decepticon/internal/gpusim"
	"decepticon/internal/stats"
	"decepticon/internal/transformer"
)

// testZoo builds one small zoo per test binary run; zoo construction does
// real training, so tests share it.
var (
	zooOnce sync.Once
	testZ   *Zoo
)

func getZoo(t *testing.T) *Zoo {
	t.Helper()
	zooOnce.Do(func() { testZ = MustBuild(SmallBuildConfig()) })
	return testZ
}

func TestCatalogShape(t *testing.T) {
	entries := catalog()
	if len(entries) < 70 {
		t.Fatalf("catalog has %d releases, need >= 70", len(entries))
	}
	names := map[string]bool{}
	for _, e := range entries {
		if names[e.name()] {
			t.Fatalf("duplicate release %q", e.name())
		}
		names[e.name()] = true
		if _, ok := transformer.Family()[e.arch]; !ok {
			t.Fatalf("release %q has unknown arch %q", e.name(), e.arch)
		}
	}
	// The ambiguity cluster must share a profile but differ in vocabulary
	// flavor.
	a, b := entries[0], entries[1]
	if a.profileKey != b.profileKey {
		t.Fatal("cluster A entries must share a profile key")
	}
	if a.cased == b.cased {
		t.Fatal("cluster A cased/uncased pair broken")
	}
}

func TestBuildPopulation(t *testing.T) {
	z := getZoo(t)
	cfg := SmallBuildConfig()
	if len(z.Pretrained) != cfg.NumPretrained {
		t.Fatalf("pretrained %d, want %d", len(z.Pretrained), cfg.NumPretrained)
	}
	if len(z.FineTuned) != cfg.NumFineTuned {
		t.Fatalf("finetuned %d, want %d", len(z.FineTuned), cfg.NumFineTuned)
	}
	for _, f := range z.FineTuned {
		if f.Pretrained == nil || f.Model() == nil {
			t.Fatalf("%s incomplete", f.Name)
		}
		if f.Model().Labels != f.Task.Labels {
			t.Fatalf("%s labels %d, task %d", f.Name, f.Model().Labels, f.Task.Labels)
		}
	}
}

func TestFineTunedModelsLearn(t *testing.T) {
	z := getZoo(t)
	var accs []float64
	for _, f := range z.FineTuned {
		accs = append(accs, f.Model().Evaluate(f.Dev))
	}
	mean := stats.Mean(accs)
	if mean < 0.75 {
		t.Fatalf("mean fine-tuned dev accuracy %v < 0.75", mean)
	}
}

// TestWeightGapStructure verifies the paper's Observation 1 (§4.1): a
// fine-tuned model is at least ~20x closer to its own pre-trained model
// than to other pre-trained models of the same architecture.
func TestWeightGapStructure(t *testing.T) {
	z := getZoo(t)
	var ownGaps, crossGaps []float64
	for _, f := range z.FineTuned {
		own := transformer.WeightGaps(f.Pretrained.Model(), f.Model())
		var sum float64
		for _, g := range own {
			sum += math.Abs(g)
		}
		ownGaps = append(ownGaps, sum/float64(len(own)))

		for _, p := range z.Pretrained {
			if p == f.Pretrained || p.ArchName != f.Pretrained.ArchName {
				continue
			}
			cross := transformer.WeightGaps(p.Model(), f.Model())
			sum = 0
			for _, g := range cross {
				sum += math.Abs(g)
			}
			crossGaps = append(crossGaps, sum/float64(len(cross)))
			break
		}
	}
	own, cross := stats.Mean(ownGaps), stats.Mean(crossGaps)
	if cross < 10*own {
		t.Fatalf("cross-model gap %v not >> own gap %v (want >= 10x, paper: 20x)", cross, own)
	}
}

// TestFractionWithinTinyGap verifies the paper's "almost 50% of weights
// within ±0.002" observation for own (pre, fine) pairs.
func TestFractionWithinTinyGap(t *testing.T) {
	z := getZoo(t)
	f := z.FineTuned[0]
	gaps := transformer.WeightGaps(f.Pretrained.Model(), f.Model())
	if frac := stats.FractionWithin(gaps, 0.002); frac < 0.4 {
		t.Fatalf("only %v of weights within ±0.002, want >= 0.4", frac)
	}
}

// TestSignKeepRate verifies §6.1.1's "99% of weights keep their sign".
func TestSignKeepRate(t *testing.T) {
	z := getZoo(t)
	f := z.FineTuned[1]
	if rate := transformer.SignKeepRate(f.Pretrained.Model(), f.Model()); rate < 0.95 {
		t.Fatalf("sign keep rate %v < 0.95", rate)
	}
}

// TestLastLayerMovesMost verifies Fig 5/6: the task head moves much more
// than any encoder layer during fine-tuning.
func TestLastLayerMovesMost(t *testing.T) {
	z := getZoo(t)
	moved := 0
	for _, f := range z.FineTuned[:5] {
		diffs := transformer.LayerMeanAbsDiff(f.Pretrained.Model(), f.Model())
		// diffs has one entry per encoder layer; the head was replaced, so
		// compare encoder movement against head weight scale directly.
		var maxEnc float64
		for _, d := range diffs[:f.Model().Layers] {
			if d > maxEnc {
				maxEnc = d
			}
		}
		headScale := f.Model().HeadW.V.MaxAbs()
		if float64(headScale) > 3*maxEnc {
			moved++
		}
	}
	if moved < 3 {
		t.Fatalf("head did not dominate movement in %d/5 models", 5-moved)
	}
}

func TestTraceInheritance(t *testing.T) {
	z := getZoo(t)
	f := z.FineTuned[0]
	pre := f.Pretrained.Trace(gpusim.Options{})
	ft := f.Trace(gpusim.Options{})
	// Everything but the 2-kernel head section matches.
	n := len(pre.Execs) - 2
	for i := 0; i < n; i++ {
		if pre.Execs[i].Name != ft.Execs[i].Name {
			t.Fatalf("fingerprint not inherited at kernel %d", i)
		}
	}
}

func TestAmbiguityCluster(t *testing.T) {
	z := getZoo(t)
	p := z.PretrainedByName("huggingface_bert-small-uncased")
	if p == nil {
		t.Fatal("cluster model missing")
	}
	amb := z.AmbiguousWith(p)
	if len(amb) < 2 {
		t.Fatalf("ambiguity cluster size %d, want >= 2", len(amb))
	}
	// Members share the exact trace fingerprint.
	a := amb[0].Trace(gpusim.Options{})
	b := amb[1].Trace(gpusim.Options{})
	if len(a.Execs) != len(b.Execs) {
		t.Fatal("ambiguous releases must share trace length")
	}
	for i := range a.Execs {
		if a.Execs[i].Name != b.Execs[i].Name {
			t.Fatal("ambiguous releases must share kernel sequence")
		}
	}
	// But their vocabularies differ.
	if amb[0].Vocab.Overlap(amb[1].Vocab) > 0.9 {
		t.Fatal("ambiguous releases should have distinguishable vocabularies")
	}
}

func TestClassifyText(t *testing.T) {
	z := getZoo(t)
	f := z.FineTuned[0]
	words := f.Pretrained.Vocab.Words()
	label, probs := f.ClassifyText(words[0] + " " + words[1])
	if label < 0 || label >= f.Task.Labels {
		t.Fatalf("label %d out of range", label)
	}
	var sum float32
	for _, p := range probs {
		sum += p
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("probs sum %v", sum)
	}
}

func TestLookupHelpers(t *testing.T) {
	z := getZoo(t)
	if z.PretrainedByName("no-such-model") != nil {
		t.Fatal("missing model must return nil")
	}
	f := z.FineTuned[0]
	if z.FineTunedByName(f.Name) != f {
		t.Fatal("FineTunedByName broken")
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	// Malformed configs are caller-facing input: they must come back as
	// errors, not kill the process.
	if _, err := Build(BuildConfig{}); err == nil {
		t.Fatal("empty config must be rejected")
	}
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 10_000
	if _, err := Build(cfg); err == nil {
		t.Fatal("catalog overflow must be rejected")
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 3
	cfg.PretrainExamples = 30
	cfg.FineTuneExamples = 30
	a := MustBuild(cfg)
	b := MustBuild(cfg)
	for i := range a.FineTuned {
		wa := a.FineTuned[i].Model().HeadW.V.Data
		wb := b.FineTuned[i].Model().HeadW.V.Data
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatal("zoo build must be deterministic")
			}
		}
	}
}

// sameWeights fails the test unless the two models carry bit-identical
// parameters.
func sameWeights(t *testing.T, label string, a, b *transformer.Model) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: parameter count %d vs %d", label, len(pa), len(pb))
	}
	for j := range pa {
		da, db := pa[j].Value.Data, pb[j].Value.Data
		if len(da) != len(db) {
			t.Fatalf("%s: tensor %s size %d vs %d", label, pa[j].Name, len(da), len(db))
		}
		for k := range da {
			if da[k] != db[k] {
				t.Fatalf("%s: tensor %s differs at %d: %v vs %v",
					label, pa[j].Name, k, da[k], db[k])
			}
		}
	}
}

// TestBuildWorkerCountInvariance is the tentpole determinism guarantee:
// a parallel build produces the same population — every name and every
// weight — as a serial one, because each model derives its seeds from
// its own name rather than from loop order.
func TestBuildWorkerCountInvariance(t *testing.T) {
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 30
	cfg.FineTuneExamples = 30

	cfg.Workers = 1
	serial := MustBuild(cfg)
	cfg.Workers = 4
	par := MustBuild(cfg)

	if len(serial.Pretrained) != len(par.Pretrained) || len(serial.FineTuned) != len(par.FineTuned) {
		t.Fatal("population sizes differ across worker counts")
	}
	for i := range serial.Pretrained {
		a, b := serial.Pretrained[i], par.Pretrained[i]
		if a.Name != b.Name {
			t.Fatalf("pretrained %d: %q vs %q", i, a.Name, b.Name)
		}
		sameWeights(t, a.Name, a.Model(), b.Model())
	}
	for i := range serial.FineTuned {
		a, b := serial.FineTuned[i], par.FineTuned[i]
		if a.Name != b.Name {
			t.Fatalf("finetuned %d: %q vs %q", i, a.Name, b.Name)
		}
		if a.Pretrained.Name != b.Pretrained.Name {
			t.Fatalf("%s: backbone %q vs %q", a.Name, a.Pretrained.Name, b.Pretrained.Name)
		}
		sameWeights(t, a.Name, a.Model(), b.Model())
	}
}

// TestProgressSerializedAndMonotonic verifies the OnProgress contract
// under a parallel build: calls never overlap and each stage's done
// count walks 1, 2, ..., total.
func TestProgressSerializedAndMonotonic(t *testing.T) {
	cfg := SmallBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 8
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 10
	cfg.FineTuneEpochs = 1
	cfg.Workers = 4

	var inCall atomic.Int32
	last := map[string]int{}
	var events int
	cfg.OnProgress = func(stage string, done, total int) {
		if inCall.Add(1) != 1 {
			t.Error("OnProgress entered concurrently")
		}
		defer inCall.Add(-1)
		if done != last[stage]+1 {
			t.Errorf("stage %s: done %d after %d, want monotonic +1", stage, done, last[stage])
		}
		last[stage] = done
		events++
	}
	MustBuild(cfg)
	if last["pretrain"] != cfg.NumPretrained || last["finetune"] != cfg.NumFineTuned {
		t.Fatalf("final progress pretrain=%d finetune=%d, want %d/%d",
			last["pretrain"], last["finetune"], cfg.NumPretrained, cfg.NumFineTuned)
	}
	if events != cfg.NumPretrained+cfg.NumFineTuned {
		t.Fatalf("%d progress events, want %d", events, cfg.NumPretrained+cfg.NumFineTuned)
	}
}

func TestDecoderReleasesAreCausal(t *testing.T) {
	// The catalog marks GPT/BART releases as decoders; their models must
	// run causal attention and their traces must use masked-attention
	// kernels.
	entries := catalog()
	foundDecoder := false
	for _, e := range entries {
		if e.decoder {
			foundDecoder = true
			if archFor(e).Causal != true {
				t.Fatalf("decoder release %s not causal", e.name())
			}
		}
	}
	if !foundDecoder {
		t.Fatal("catalog has no decoder releases")
	}
}

#!/bin/sh
# progress-smoke: end-to-end exercise of the campaign telemetry surfaces.
#
#  1. Control: a daemon runs one campaign to completion; its progress
#     document reports fraction exactly 1, its event ledger validates
#     (monotonic seq, legal transitions, unique terminal), and the
#     follow-mode /events stream replays it seq-checked.
#  2. Crash/resume: the same campaign is SIGTERMed mid-extraction and
#     resumed by a restarted daemon. The single ledger must span both
#     processes (interrupted + resumed present, one terminal) and the
#     final progress line must be BYTE-IDENTICAL to the control.
#  3. Worker invariance: the same campaign with 4 victim workers must
#     produce the same progress bytes again.
#  4. decepticontop -once renders the live state: the campaign row at
#     100.0% and the tenant budget table.
set -eu

GO="${GO:-go}"
DIR=.progress-smoke
rm -rf "$DIR"; mkdir -p "$DIR"

$GO build -o "$DIR/decepticond" ./cmd/decepticond
$GO build -o "$DIR/campaignload" ./cmd/campaignload
$GO build -o "$DIR/metricscheck" ./cmd/metricscheck
$GO build -o "$DIR/decepticontop" ./cmd/decepticontop
$GO run ./cmd/zoo -scale tiny -cache "$DIR/zoo" >/dev/null

DPID=""
start_daemon() { # $1 = state dir, rest = extra flags
  state="$1"; shift
  mkdir -p "$state"
  rm -f "$state/decepticond.addr"
  "$DIR/decepticond" -scale tiny -cache "$DIR/zoo" -dir "$state" \
    -addr localhost:0 "$@" &
  DPID=$!
  i=0
  until [ -s "$state/decepticond.addr" ]; do
    i=$((i+1))
    if [ $i -gt 600 ]; then echo "progress-smoke: daemon did not start" >&2; exit 1; fi
    sleep 0.1
  done
}
stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID"
}
CL="$DIR/campaignload -timeout 120s"

echo "progress-smoke: control run (1 worker, uninterrupted)"
start_daemon "$DIR/control" -runners 1 -tenants 'ops:0:1'
AF="$DIR/control/decepticond.addr"
$CL -addr-file "$AF" -submit -tenant ops -seed 3 -workers 1 >/dev/null
$CL -addr-file "$AF" -events c000001 >"$DIR/control.events" 2>/dev/null
$CL -addr-file "$AF" -wait c000001 >/dev/null
$CL -addr-file "$AF" -progress c000001 >"$DIR/control.progress"
"$DIR/decepticontop" -addr-file "$AF" -once >"$DIR/top.frame"
stop_daemon
"$DIR/metricscheck" -events "$DIR/control/campaigns/c000001/events.ndjson"
grep -q '"fraction":1,' "$DIR/control.progress" || {
  echo "progress-smoke: control progress not exactly 1:"; cat "$DIR/control.progress"; exit 1; }
# The follow-mode stream saw the full history through the terminal event.
grep -q '"event":"done"' "$DIR/control.events"
"$DIR/metricscheck" -events "$DIR/control.events"

echo "progress-smoke: kill mid-extraction, restart, resume"
start_daemon "$DIR/state" -runners 1 -tenants 'ops:0:1'
AF="$DIR/state/decepticond.addr"
$CL -addr-file "$AF" -submit -tenant ops -seed 3 -workers 1 >/dev/null
i=0
until ls "$DIR/state/campaigns"/*/ckpt/*.ckpt >/dev/null 2>&1; do
  i=$((i+1))
  if [ $i -gt 600 ]; then echo "progress-smoke: no checkpoint appeared" >&2; exit 1; fi
  sleep 0.05
done
stop_daemon
start_daemon "$DIR/state" -runners 1 -tenants 'ops:0:1'
$CL -addr-file "$AF" -wait c000001 >/dev/null
$CL -addr-file "$AF" -progress c000001 >"$DIR/resumed.progress"
stop_daemon
LEDGER="$DIR/state/campaigns/c000001/events.ndjson"
"$DIR/metricscheck" -events "$LEDGER"
grep -q '"event":"interrupted"' "$LEDGER" || {
  echo "progress-smoke: resumed ledger never interrupted" >&2; exit 1; }
grep -q '"event":"resumed"' "$LEDGER" || {
  echo "progress-smoke: resumed ledger never resumed" >&2; exit 1; }
cmp "$DIR/control.progress" "$DIR/resumed.progress"
echo "progress-smoke: kill/resume progress is byte-identical"

echo "progress-smoke: worker invariance (4 victim workers)"
start_daemon "$DIR/wide" -runners 1 -tenants 'ops:0:1'
AF="$DIR/wide/decepticond.addr"
$CL -addr-file "$AF" -submit -tenant ops -seed 3 -workers 4 >/dev/null
$CL -addr-file "$AF" -wait c000001 >/dev/null
$CL -addr-file "$AF" -progress c000001 >"$DIR/wide.progress"
stop_daemon
cmp "$DIR/control.progress" "$DIR/wide.progress"
echo "progress-smoke: 4-worker progress is byte-identical"

# The dashboard frame captured while the control daemon was live: the
# campaign row at 100.0% and the tenant budget table.
grep -q 'c000001' "$DIR/top.frame" || { echo "progress-smoke: no campaign row:"; cat "$DIR/top.frame"; exit 1; }
grep -q '100.0%' "$DIR/top.frame" || { echo "progress-smoke: campaign not at 100%:"; cat "$DIR/top.frame"; exit 1; }
grep -q 'ops' "$DIR/top.frame" || { echo "progress-smoke: no tenant row:"; cat "$DIR/top.frame"; exit 1; }

rm -rf "$DIR"
echo "progress-smoke: ok"

#!/bin/sh
# service-smoke: end-to-end exercise of decepticond, the campaign daemon.
#
#  1. Control: a daemon runs two campaigns (two tenants) to completion
#     and drains cleanly on SIGTERM.
#  2. Crash/resume: a second daemon on a fresh state dir gets the same
#     two campaigns, is SIGTERMed mid-extraction (checkpoints on disk),
#     and a restarted daemon on the same dir must finish both with
#     results.ndjson, streamed bytes, and summaries BYTE-IDENTICAL to
#     the control — same clones, same Stats, zero re-paid hammer rounds.
#  3. Load: campaignload drives 100 concurrent campaigns through the
#     bounded queue (max depth asserted), with one finite-budget tenant
#     proving per-tenant enforcement, order-checked NDJSON streams, and
#     a bounded daemon heap.
#
# Both daemons share one -cache zoo so every run starts from the same
# population (and the cache config-validation keeps it honest).
set -eu

GO="${GO:-go}"
DIR=.service-smoke
rm -rf "$DIR"; mkdir -p "$DIR"

$GO build -o "$DIR/decepticond" ./cmd/decepticond
$GO build -o "$DIR/campaignload" ./cmd/campaignload
$GO run ./cmd/zoo -scale tiny -cache "$DIR/zoo" >/dev/null

DPID=""
start_daemon() { # $1 = state dir, rest = extra flags
  state="$1"; shift
  mkdir -p "$state"
  rm -f "$state/decepticond.addr"
  "$DIR/decepticond" -scale tiny -cache "$DIR/zoo" -dir "$state" \
    -addr localhost:0 "$@" &
  DPID=$!
  i=0
  until [ -s "$state/decepticond.addr" ]; do
    i=$((i+1))
    if [ $i -gt 600 ]; then echo "service-smoke: daemon did not start" >&2; exit 1; fi
    sleep 0.1
  done
}
stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID"
}
CL="$DIR/campaignload -timeout 120s"

echo "service-smoke: control run (uninterrupted)"
start_daemon "$DIR/control" -runners 2 -tenants 'alice:0:2,bob:0:1'
AF="$DIR/control/decepticond.addr"
$CL -addr-file "$AF" -submit -tenant alice -seed 3 >/dev/null
$CL -addr-file "$AF" -submit -tenant bob -seed 4 >/dev/null
$CL -addr-file "$AF" -wait c000001 >/dev/null
$CL -addr-file "$AF" -wait c000002 >/dev/null
$CL -addr-file "$AF" -summary c000001 >"$DIR/control.sum"
$CL -addr-file "$AF" -summary c000002 >>"$DIR/control.sum"
$CL -addr-file "$AF" -stream c000001 >"$DIR/control.c1.stream" 2>/dev/null
stop_daemon

echo "service-smoke: kill mid-campaign, restart, resume"
start_daemon "$DIR/state" -runners 2 -tenants 'alice:0:2,bob:0:1'
AF="$DIR/state/decepticond.addr"
$CL -addr-file "$AF" -submit -tenant alice -seed 3 >/dev/null
$CL -addr-file "$AF" -submit -tenant bob -seed 4 >/dev/null
# SIGTERM the moment an extraction checkpoint exists: the daemon dies
# with campaigns genuinely in flight.
i=0
until ls "$DIR/state/campaigns"/*/ckpt/*.ckpt >/dev/null 2>&1; do
  i=$((i+1))
  if [ $i -gt 600 ]; then echo "service-smoke: no checkpoint appeared" >&2; exit 1; fi
  sleep 0.05
done
stop_daemon

start_daemon "$DIR/state" -runners 2 -tenants 'alice:0:2,bob:0:1'
$CL -addr-file "$AF" -wait c000001 >/dev/null
$CL -addr-file "$AF" -wait c000002 >/dev/null
$CL -addr-file "$AF" -summary c000001 >"$DIR/resumed.sum"
$CL -addr-file "$AF" -summary c000002 >>"$DIR/resumed.sum"
$CL -addr-file "$AF" -stream c000001 >"$DIR/resumed.c1.stream" 2>/dev/null
stop_daemon

# Byte-identical resume: the durable result files, the bytes a client
# streams back, and the deterministic campaign summaries (which carry
# total_oracle_attempts and total_hammer_rounds — equality means zero
# re-paid work).
cmp "$DIR/control/campaigns/c000001/results.ndjson" "$DIR/state/campaigns/c000001/results.ndjson"
cmp "$DIR/control/campaigns/c000002/results.ndjson" "$DIR/state/campaigns/c000002/results.ndjson"
cmp "$DIR/control.c1.stream" "$DIR/resumed.c1.stream"
cmp "$DIR/control.sum" "$DIR/resumed.sum"
echo "service-smoke: resume is byte-identical"

echo "service-smoke: load (100 concurrent campaigns, bounded queue, budget tenant)"
start_daemon "$DIR/load" -runners 4 -queue-limit 8 \
  -tenants 'cap:30000:1' -retry-after 1s
$DIR/campaignload -timeout 600s -addr-file "$DIR/load/decepticond.addr" \
  -load 100 -concurrency 32 -tenants cap,free -victims-per 1 \
  -queue-limit 8 -max-heap-mb 2048
stop_daemon

rm -rf "$DIR"
echo "service-smoke: ok"
